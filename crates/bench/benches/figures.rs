//! Regenerates every figure and table of the PipeInfer evaluation.
//!
//! Run with `cargo bench -p pi-bench --bench figures`.  By default a quick
//! profile (64 generated tokens per run) is used; set
//! `PIPEINFER_BENCH_SCALE=paper` for the paper's full 128-prompt/512-token
//! profile.  Output is the textual equivalent of the paper's bar charts; see
//! EXPERIMENTS.md for the side-by-side comparison with the published values.

use pi_bench::*;
use pi_metrics::Report;
use pi_perf::ModelPair;
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    println!(
        "PipeInfer evaluation harness — prompt {} tokens, {} generated tokens per run\n",
        scale.prompt_len, scale.n_generate
    );

    println!(
        "{}",
        table_model_pairs(&ModelPair::table1(), "Table I: CPU model pairs")
    );
    println!(
        "{}",
        table_model_pairs(&ModelPair::table3(), "Table III: GPU model pairs")
    );
    println!("{}", table_testbeds());

    let mut report = Report::new();
    let start = Instant::now();

    for f in fig_dolphin(scale) {
        report.insert(f);
    }
    eprintln!("[{:6.1?}] Dolphin sweeps done", start.elapsed());
    for f in fig_goliath(scale) {
        report.insert(f);
    }
    eprintln!("[{:6.1?}] Goliath sweeps done", start.elapsed());
    for f in fig_falcon(scale) {
        report.insert(f);
    }
    eprintln!("[{:6.1?}] Falcon sweeps done", start.elapsed());

    report.insert(fig7a_memory_efficiency(scale));
    report.insert(fig7b_constrained_ttft(scale));
    report.insert(fig7c_constrained_speed(scale));
    eprintln!(
        "[{:6.1?}] constrained-cluster figures done",
        start.elapsed()
    );
    report.insert(fig8_ablations(scale));
    report.insert(fig9_gpu_speed(scale));
    report.insert(fig10_prompt_variance(scale));
    eprintln!("[{:6.1?}] ablations + GPU figures done", start.elapsed());

    println!("{}", report.render());

    // Headline ratios the paper quotes in the abstract / §V-B.
    if let Some(fig4b) = report.figure("Fig. 4b") {
        if let Some(r) = fig4b.ratio("Pipe. (XWin-7B)", "Spec. (XWin-7B)", "8 Node") {
            println!(
                "PipeInfer / speculative speedup, Goliath + XWin-7B, 8 nodes: {r:.2}x (paper: up to 2.15x)"
            );
        }
    }
    if let Some(fig4a) = report.figure("Fig. 4a") {
        if let Some(r) = fig4a.ratio("Pipe. (TinyLlama)", "Spec. (TinyLlama)", "8 Node") {
            println!(
                "PipeInfer / speculative speedup, Dolphin + TinyLlama, 8 nodes: {r:.2}x (paper: ~1.5-1.7x)"
            );
        }
    }
    println!("\nTotal harness time: {:?}", start.elapsed());
}
