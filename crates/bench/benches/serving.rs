//! Serving-layer benchmark: goodput and latency percentiles per strategy
//! under identical steady / bursty / mixed traffic, plus the
//! tree-vs-linear speculation gate.
//!
//! Run with `cargo bench -p pi-bench --bench serving`.  By default the quick
//! profile is used; set `PIPEINFER_BENCH_SCALE=paper` for a longer stream
//! with the paper's token budgets.  Each strategy owns one prepared
//! deployment and serves the same request streams through the
//! continuous-batching `pi-serve` scheduler on the discrete-event simulator.
//! With `PIPEINFER_BENCH_ASSERT=1` the run fails unless tree speculation
//! beats linear speculation in accepted-tokens-per-verify on the seeded
//! low-acceptance workload (the CI regression gate).

use pi_bench::{fig_serving, tree_vs_linear_gate, BenchScale, ServingScale};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    let serving = ServingScale::from(scale);
    println!(
        "PipeInfer serving harness — {} requests/workload, {} tokens/request, window {}, {} nodes\n",
        serving.n_requests, serving.n_generate, serving.max_in_flight, serving.n_nodes
    );
    let start = Instant::now();
    for fig in fig_serving(scale) {
        println!("{}", fig.render());
    }
    let (tree, linear) = tree_vs_linear_gate(scale);
    println!(
        "tree-speculation gate (Goliath + XWin-7B, mixed lengths): \
         tree {tree:.3} vs linear {linear:.3} accepted-tokens-per-verify"
    );
    if std::env::var_os("PIPEINFER_BENCH_ASSERT").is_some() {
        assert!(
            tree > linear,
            "tree speculation ({tree:.3} tok/verify) must beat linear \
             speculation ({linear:.3}) on the seeded workload"
        );
        println!("PIPEINFER_BENCH_ASSERT: tree > linear — OK");
    }
    eprintln!("[{:6.1?}] serving figures done", start.elapsed());
}
