//! Serving-layer benchmark: goodput and latency percentiles per strategy
//! under identical steady / bursty / mixed traffic.
//!
//! Run with `cargo bench -p pi-bench --bench serving`.  By default the quick
//! profile is used; set `PIPEINFER_BENCH_SCALE=paper` for a longer stream
//! with the paper's token budgets.  Each strategy owns one prepared
//! deployment and serves the same request streams through the
//! continuous-batching `pi-serve` scheduler on the discrete-event simulator.

use pi_bench::{fig_serving, BenchScale, ServingScale};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    let serving = ServingScale::from(scale);
    println!(
        "PipeInfer serving harness — {} requests/workload, {} tokens/request, window {}, {} nodes\n",
        serving.n_requests, serving.n_generate, serving.max_in_flight, serving.n_nodes
    );
    let start = Instant::now();
    for fig in fig_serving(scale) {
        println!("{}", fig.render());
    }
    eprintln!("[{:6.1?}] serving figures done", start.elapsed());
}
