//! Serving-layer benchmark: goodput and latency percentiles per strategy
//! under identical steady / bursty / mixed traffic, the Fig. 3 draft-rank
//! layout study, plus the tree-vs-linear and draft-rank regression gates.
//!
//! Run with `cargo bench -p pi-bench --bench serving`.  By default the quick
//! profile is used; set `PIPEINFER_BENCH_SCALE=paper` for a longer stream
//! with the paper's token budgets.  Each strategy owns one prepared
//! deployment and serves the same request streams through the
//! continuous-batching `pi-serve` scheduler on the discrete-event simulator.
//! With `PIPEINFER_BENCH_ASSERT=1` the run fails unless (a) tree speculation
//! beats linear speculation in accepted-tokens-per-verify, (b) the
//! dedicated-draft-rank layout clears at least head-hosted
//! accepted-tokens-per-second, both on the seeded 52 %-acceptance stream,
//! (c) asynchronous speculation beats synchronous verification at the
//! high-latency end of the link-latency/jitter sweep, (d) prefix sharing
//! cuts TTFT and sustains a larger refusal-free window, and (e)
//! iteration-level cohort batching beats request-granularity decode on
//! goodput while forming real cohorts (the CI regression gates).

use pi_bench::{
    cohort_batching_gate_of, draft_rank_gate_of, fig_cohort_batching, fig_draft_rank,
    fig_latency_sweep, fig_serving, fig_shared_prefix, latency_tolerance_gate_of,
    tree_vs_linear_gate, BenchScale, CohortBatchingGate, ServingScale, SharedPrefixGate,
    LATENCY_MULTIPLIERS,
};
use pi_metrics::Figure;
use std::time::Instant;

/// Where the machine-readable results go: the workspace root, next to
/// `BENCH_kernels.json`.
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");

/// Flattens every figure's data points plus the shared-prefix gate numbers
/// into `BENCH_serving.json`.
fn write_json(figures: &[&Figure], gate: &SharedPrefixGate, cohort: &CohortBatchingGate) {
    let mut rows: Vec<String> = Vec::new();
    for fig in figures {
        for point in fig.points() {
            rows.push(format!(
                "  {{\"figure\": \"{}\", \"series\": \"{}\", \"metric\": \"{}\", \"value\": {:.6}}}",
                fig.id, point.series, point.x, point.value
            ));
        }
    }
    for (metric, value) in [
        ("ttft p50 pooled s", gate.pooled_ttft_p50),
        ("ttft p50 flat s", gate.flat_ttft_p50),
        ("prefix hit rate", gate.prefix_hit_rate),
        ("max window shared", gate.shared_max_window as f64),
        ("max window unshared", gate.unshared_max_window as f64),
        ("pool pages", gate.pool_pages as f64),
    ] {
        rows.push(format!(
            "  {{\"figure\": \"shared-prefix gate\", \"series\": \"paged kv pool\",              \"metric\": \"{metric}\", \"value\": {value:.6}}}"
        ));
    }
    for (metric, value) in [
        ("goodput fused tok/s", cohort.fused_goodput),
        ("goodput unfused tok/s", cohort.unfused_goodput),
        ("mean cohort width", cohort.mean_cohort_width),
    ] {
        rows.push(format!(
            "  {{\"figure\": \"cohort-batching gate\", \"series\": \"step loop\", \"metric\": \"{metric}\", \"value\": {value:.6}}}"
        ));
    }
    let out = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(JSON_PATH, out) {
        Ok(()) => println!("\nwrote {}", JSON_PATH),
        Err(e) => eprintln!("\nfailed to write {}: {e}", JSON_PATH),
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let serving = ServingScale::from(scale);
    println!(
        "PipeInfer serving harness — {} requests/workload, {} tokens/request, window {}, {} nodes\n",
        serving.n_requests, serving.n_generate, serving.max_in_flight, serving.n_nodes
    );
    let start = Instant::now();
    let serving_figs = fig_serving(scale);
    for fig in &serving_figs {
        println!("{}", fig.render());
    }
    let layout_fig = fig_draft_rank(scale);
    println!("{}", layout_fig.render());
    let assert_gates = std::env::var_os("PIPEINFER_BENCH_ASSERT").is_some();
    let (tree, linear) = tree_vs_linear_gate(scale);
    println!(
        "tree-speculation gate (Goliath + XWin-7B, mixed lengths): \
         tree {tree:.3} vs linear {linear:.3} accepted-tokens-per-verify"
    );
    if assert_gates {
        assert!(
            tree > linear,
            "tree speculation ({tree:.3} tok/verify) must beat linear \
             speculation ({linear:.3}) on the seeded workload"
        );
        println!("PIPEINFER_BENCH_ASSERT: tree > linear — OK");
    }
    let (dedicated, head_hosted) = draft_rank_gate_of(&layout_fig);
    println!(
        "draft-rank gate (Goliath + XWin-7B, mixed lengths): \
         dedicated {dedicated:.3} vs head-hosted {head_hosted:.3} accepted-tokens-per-second"
    );
    if assert_gates {
        assert!(
            dedicated >= head_hosted,
            "the dedicated draft rank ({dedicated:.3} tok/s) must not fall behind \
             head-hosted drafting ({head_hosted:.3} tok/s) on the seeded workload"
        );
        println!("PIPEINFER_BENCH_ASSERT: dedicated >= head-hosted — OK");
    }
    let sweep_fig = fig_latency_sweep(scale);
    println!("{}", sweep_fig.render());
    let (pipe, spec) = latency_tolerance_gate_of(&sweep_fig);
    println!(
        "latency-tolerance gate (Goliath + XWin-7B, {}x link latency): \
         PipeInfer {pipe:.3} vs Speculative {spec:.3} tokens/s",
        LATENCY_MULTIPLIERS[LATENCY_MULTIPLIERS.len() - 1]
    );
    if assert_gates {
        assert!(
            pipe > spec,
            "asynchronous speculation ({pipe:.3} tok/s) must beat synchronous \
             verification ({spec:.3} tok/s) at the high-latency end of the sweep"
        );
        println!("PIPEINFER_BENCH_ASSERT: async > sync on slow links — OK");
    }
    let (prefix_fig, prefix_gate) = fig_shared_prefix(scale);
    println!("{}", prefix_fig.render());
    println!(
        "shared-prefix gate (90 % shared system prompt, paged KV pool): \
         ttft p50 {:.4} s pooled vs {:.4} s flat | prefix hit rate {:.0} % | \
         max refusal-free window {} shared vs {} unshared at {} pages",
        prefix_gate.pooled_ttft_p50,
        prefix_gate.flat_ttft_p50,
        prefix_gate.prefix_hit_rate * 100.0,
        prefix_gate.shared_max_window,
        prefix_gate.unshared_max_window,
        prefix_gate.pool_pages,
    );
    if assert_gates {
        assert!(
            prefix_gate.pooled_ttft_p50 < prefix_gate.flat_ttft_p50,
            "prefix sharing ({:.4} s p50 TTFT) must beat flat prefill ({:.4} s) \
             on the 90 %-shared stream",
            prefix_gate.pooled_ttft_p50,
            prefix_gate.flat_ttft_p50,
        );
        assert!(
            prefix_gate.shared_max_window > prefix_gate.unshared_max_window,
            "shared-prefix traffic must sustain a larger refusal-free window \
             ({}) than unshared traffic ({}) at {} pages",
            prefix_gate.shared_max_window,
            prefix_gate.unshared_max_window,
            prefix_gate.pool_pages,
        );
        println!("PIPEINFER_BENCH_ASSERT: shared-prefix TTFT + window — OK");
    }
    let (cohort_fig, _) = fig_cohort_batching(scale);
    println!("{}", cohort_fig.render());
    let cohort_gate = cohort_batching_gate_of(&cohort_fig);
    println!(
        "cohort-batching gate (steady 8-request stream, identical traffic): \
         fused {:.3} vs request-granularity {:.3} tok/s goodput | mean cohort width {:.2}",
        cohort_gate.fused_goodput, cohort_gate.unfused_goodput, cohort_gate.mean_cohort_width,
    );
    if assert_gates {
        assert!(
            cohort_gate.fused_goodput > cohort_gate.unfused_goodput,
            "iteration-level batching ({:.3} tok/s) must beat request-granularity \
             decode ({:.3} tok/s) on the steady stream",
            cohort_gate.fused_goodput,
            cohort_gate.unfused_goodput,
        );
        assert!(
            cohort_gate.mean_cohort_width > 2.0,
            "the steady stream must form real cohorts (mean width {:.2} <= 2)",
            cohort_gate.mean_cohort_width,
        );
        println!("PIPEINFER_BENCH_ASSERT: fused > request-granularity, width > 2 — OK");
    }
    let mut json_figs: Vec<&Figure> = serving_figs.iter().collect();
    json_figs.push(&layout_fig);
    json_figs.push(&sweep_fig);
    json_figs.push(&prefix_fig);
    json_figs.push(&cohort_fig);
    write_json(&json_figs, &prefix_gate, &cohort_gate);
    eprintln!("[{:6.1?}] serving figures done", start.elapsed());
}
