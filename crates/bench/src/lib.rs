//! # pi-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! PipeInfer evaluation (paper §V and §VI) on top of the discrete-event
//! cluster simulator.  Each `fig*` / `table*` function returns a
//! [`pi_metrics::Figure`] (or a rendered string for the static tables) that
//! the `figures` bench target prints in the same rows/series layout as the
//! paper; `EXPERIMENTS.md` records the comparison against the published
//! values.
//!
//! Scale is controlled by [`BenchScale`]: the default `quick` profile
//! generates 64 tokens per run so the whole suite completes in well under a
//! minute; `BenchScale::paper()` uses the paper's 128-token prompts and 512
//! generated tokens.

use pi_metrics::Figure;
use pi_perf::memory::{per_node_memory, speed_per_gb};
use pi_perf::{ClusterSpec, InferenceStrategy, ModelPair};
use pi_spec::deploy::{
    Deployment, ExecutionMode, IterativeStrategy, RunOutput, SpeculativeStrategy,
};
use pi_spec::{GenConfig, GenerationRecord, TreeSpeculationStrategy};
use pipeinfer_core::{run_pipeinfer, PipeInferConfig, PipeInferStrategy};

/// How much work each experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScale {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of generated tokens per run.
    pub n_generate: usize,
}

impl BenchScale {
    /// Fast profile used by default and by the crate's tests.
    pub fn quick() -> Self {
        Self {
            prompt_len: 32,
            n_generate: 64,
        }
    }

    /// The paper's evaluation profile: 128-token prompts, 512 generated
    /// tokens.
    pub fn paper() -> Self {
        Self {
            prompt_len: 128,
            n_generate: 512,
        }
    }

    /// Reads the scale from the `PIPEINFER_BENCH_SCALE` environment variable
    /// (`"paper"` selects the full profile; anything else the quick one).
    pub fn from_env() -> Self {
        match std::env::var("PIPEINFER_BENCH_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Self::paper(),
            _ => Self::quick(),
        }
    }
}

/// Deterministic seed used for every oracle in the harness.
pub const ORACLE_SEED: u64 = 2024;

/// Builds the prompt used by most experiments: a fixed-length pseudo-text
/// prompt derived from a tag so different prompts genuinely differ.
pub fn make_prompt(scale: BenchScale, tag: u64) -> Vec<u32> {
    (0..scale.prompt_len)
        .map(|i| ((i as u64 * 131 + tag * 977 + 7) % 29000) as u32 + 3)
        .collect()
}

fn gen_config(scale: BenchScale, tag: u64) -> GenConfig {
    GenConfig {
        prompt: make_prompt(scale, tag),
        n_generate: scale.n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    }
}

fn sim_mode(pair: &ModelPair, cluster: ClusterSpec) -> ExecutionMode {
    ExecutionMode::Sim {
        pair: pair.clone(),
        cluster,
        oracle_seed: ORACLE_SEED,
    }
}

/// The [`Deployment`] executing `strategy` with the harness defaults
/// (PipeInfer uses the paper's configuration).
pub fn deployment_for(strategy: InferenceStrategy) -> Deployment {
    match strategy {
        InferenceStrategy::Iterative => Deployment::new(IterativeStrategy),
        InferenceStrategy::Speculative => Deployment::new(SpeculativeStrategy),
        InferenceStrategy::PipeInfer => {
            Deployment::new(PipeInferStrategy::new(PipeInferConfig::paper_default()))
        }
    }
}

/// Runs one experiment point and returns the head's record.
pub fn run_strategy(
    strategy: InferenceStrategy,
    pair: &ModelPair,
    cluster: ClusterSpec,
    config: &GenConfig,
) -> RunOutput {
    let n = cluster.n_nodes();
    let mode = sim_mode(pair, cluster);
    deployment_for(strategy).run(&mode, n, config)
}

/// Which metric of a [`GenerationRecord`] a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Average generation speed in tokens per second.
    Speed,
    /// Time-to-first-token in seconds.
    Ttft,
    /// Mean inter-token latency in seconds.
    Itl,
}

impl Metric {
    fn of(&self, r: &GenerationRecord) -> f64 {
        match self {
            Metric::Speed => r.generation_speed(),
            Metric::Ttft => r.ttft(),
            Metric::Itl => r.mean_itl(),
        }
    }

    fn unit(&self) -> &'static str {
        match self {
            Metric::Speed => "tokens/s",
            Metric::Ttft => "seconds",
            Metric::Itl => "seconds",
        }
    }
}

/// The node counts of the paper's cluster-C sweeps (Figures 4–6).
pub const CLUSTER_C_NODES: [usize; 4] = [4, 8, 15, 32];

/// One generation-speed / TTFT / ITL sweep over cluster C for a target model
/// with two candidate draft models — the shape of Figures 4a/5a/6a etc.
fn cluster_c_sweep(
    id_speed: &str,
    id_ttft: &str,
    id_itl: &str,
    title: &str,
    pairs: &[(&str, ModelPair)],
    scale: BenchScale,
) -> [Figure; 3] {
    let mut fig_speed = Figure::new(
        id_speed,
        &format!("{title} generation speed"),
        Metric::Speed.unit(),
    );
    let mut fig_ttft = Figure::new(id_ttft, &format!("{title} TTFT"), Metric::Ttft.unit());
    let mut fig_itl = Figure::new(
        id_itl,
        &format!("{title} inter-token latency"),
        Metric::Itl.unit(),
    );
    let config_tag = 1;
    for &n in &CLUSTER_C_NODES {
        let x = format!("{n} Node");
        let config = gen_config(scale, config_tag);
        // Iterative is draft-independent: one series.
        let iter = run_strategy(
            InferenceStrategy::Iterative,
            &pairs[0].1,
            ClusterSpec::cluster_c(n),
            &config,
        );
        fig_speed.push("Iter.", &x, Metric::Speed.of(&iter.record));
        fig_ttft.push("Iter.", &x, Metric::Ttft.of(&iter.record));
        fig_itl.push("Iter.", &x, Metric::Itl.of(&iter.record));
        for (draft_name, pair) in pairs {
            let spec = run_strategy(
                InferenceStrategy::Speculative,
                pair,
                ClusterSpec::cluster_c(n),
                &config,
            );
            let pipe = run_strategy(
                InferenceStrategy::PipeInfer,
                pair,
                ClusterSpec::cluster_c(n),
                &config,
            );
            fig_speed.push(
                &format!("Spec. ({draft_name})"),
                &x,
                Metric::Speed.of(&spec.record),
            );
            fig_speed.push(
                &format!("Pipe. ({draft_name})"),
                &x,
                Metric::Speed.of(&pipe.record),
            );
            fig_ttft.push(
                &format!("Spec. ({draft_name})"),
                &x,
                Metric::Ttft.of(&spec.record),
            );
            fig_ttft.push(
                &format!("Pipe. ({draft_name})"),
                &x,
                Metric::Ttft.of(&pipe.record),
            );
            fig_itl.push(
                &format!("Spec. ({draft_name})"),
                &x,
                Metric::Itl.of(&spec.record),
            );
            fig_itl.push(
                &format!("Pipe. ({draft_name})"),
                &x,
                Metric::Itl.of(&pipe.record),
            );
        }
    }
    [fig_speed, fig_ttft, fig_itl]
}

/// Figures 4a, 5a, 6a: Dolphin-70B with TinyLlama / Orca-2 drafts.
pub fn fig_dolphin(scale: BenchScale) -> [Figure; 3] {
    cluster_c_sweep(
        "Fig. 4a",
        "Fig. 5a",
        "Fig. 6a",
        "Dolphin-70B",
        &[
            ("TinyLlama", ModelPair::dolphin_tinyllama()),
            ("Orca2", ModelPair::dolphin_orca2()),
        ],
        scale,
    )
}

/// Figures 4b, 5b, 6b: Goliath-120B with XWin-7B / XWin-13B drafts.
pub fn fig_goliath(scale: BenchScale) -> [Figure; 3] {
    cluster_c_sweep(
        "Fig. 4b",
        "Fig. 5b",
        "Fig. 6b",
        "Goliath-120B",
        &[
            ("XWin-7B", ModelPair::goliath_xwin7b()),
            ("XWin-13B", ModelPair::goliath_xwin13b()),
        ],
        scale,
    )
}

/// Figures 4c, 5c, 6c: Falcon-180B with Falcon-7B / Falcon-40B drafts.
pub fn fig_falcon(scale: BenchScale) -> [Figure; 3] {
    cluster_c_sweep(
        "Fig. 4c",
        "Fig. 5c",
        "Fig. 6c",
        "Falcon-180B",
        &[
            ("Falcon-7B", ModelPair::falcon_7b()),
            ("Falcon-40B", ModelPair::falcon_40b()),
        ],
        scale,
    )
}

/// Figure 7a: memory efficiency (generation speed per mean per-node GB) on
/// cluster C.
pub fn fig7a_memory_efficiency(scale: BenchScale) -> Figure {
    let mut fig = Figure::new("Fig. 7a", "Memory efficiency", "tokens/s per GB");
    let pairs = [
        ("Dolphin", ModelPair::dolphin_tinyllama()),
        ("Goliath", ModelPair::goliath_xwin7b()),
        ("Falcon", ModelPair::falcon_7b()),
    ];
    for &n in &CLUSTER_C_NODES {
        let x = format!("{n} Node");
        let config = gen_config(scale, 1);
        for (name, pair) in &pairs {
            for strategy in InferenceStrategy::all() {
                let out = run_strategy(strategy, pair, ClusterSpec::cluster_c(n), &config);
                let mem = per_node_memory(pair, strategy, n);
                fig.push(
                    &format!("{} ({name})", strategy.name()),
                    &x,
                    speed_per_gb(out.record.generation_speed(), &mem),
                );
            }
        }
    }
    fig
}

/// Figure 7b: TTFT on the constrained cluster A (8 nodes, Gigabit Ethernet).
pub fn fig7b_constrained_ttft(scale: BenchScale) -> Figure {
    let mut fig = Figure::new("Fig. 7b", "TTFT on cluster A", "seconds");
    let pairs = [
        ("Dolphin", ModelPair::dolphin_tinyllama()),
        ("Goliath", ModelPair::goliath_xwin7b()),
        ("Falcon", ModelPair::falcon_7b()),
    ];
    let config = gen_config(scale, 2);
    for (name, pair) in &pairs {
        for strategy in InferenceStrategy::all() {
            let out = run_strategy(strategy, pair, ClusterSpec::cluster_a(8), &config);
            fig.push(strategy.name(), name, Metric::Ttft.of(&out.record));
        }
    }
    fig
}

/// Figure 7c: generation speed on the constrained clusters (4 and 8 nodes of
/// cluster A, 13 heterogeneous nodes of cluster B), small draft models.
pub fn fig7c_constrained_speed(scale: BenchScale) -> Figure {
    let mut fig = Figure::new(
        "Fig. 7c",
        "Generation speed on constrained clusters",
        "tokens/s",
    );
    let pairs = [
        ("Dolphin", ModelPair::dolphin_tinyllama()),
        ("Goliath", ModelPair::goliath_xwin7b()),
        ("Falcon", ModelPair::falcon_7b()),
    ];
    let config = gen_config(scale, 3);
    for (n, cluster) in [
        (4usize, ClusterSpec::cluster_a(4)),
        (8, ClusterSpec::cluster_a(8)),
        (13, ClusterSpec::cluster_b(13)),
    ] {
        let x = format!("{n} Node");
        for (name, pair) in &pairs {
            for strategy in InferenceStrategy::all() {
                let out = run_strategy(strategy, pair, cluster.clone(), &config);
                fig.push(
                    &format!("{} ({name})", strategy.name()),
                    &x,
                    Metric::Speed.of(&out.record),
                );
            }
        }
    }
    fig
}

/// Figure 8: ablation studies on 8 nodes of cluster C — full PipeInfer vs
/// disabled cancellation vs disabled continuous speculation, reporting
/// generation speed, TTFT and ITL.
pub fn fig8_ablations(scale: BenchScale) -> Figure {
    let mut fig = Figure::new("Fig. 8", "Ablation studies (8 nodes)", "tokens/s | s | s");
    let pairs = [
        ("Dolphin", ModelPair::dolphin_tinyllama()),
        ("Goliath", ModelPair::goliath_xwin7b()),
        ("Falcon", ModelPair::falcon_7b()),
    ];
    let variants: [(&str, PipeInferConfig); 3] = [
        ("PipeInfer", PipeInferConfig::paper_default()),
        ("No cancellation", PipeInferConfig::no_cancellation()),
        (
            "No cont. spec.",
            PipeInferConfig::no_continuous_speculation(),
        ),
    ];
    let config = gen_config(scale, 4);
    for (pair_name, pair) in &pairs {
        for (variant_name, variant) in &variants {
            let mode = sim_mode(pair, ClusterSpec::cluster_c(8));
            let out = run_pipeinfer(&mode, 8, &config, variant);
            let series = format!("{pair_name}: {variant_name}");
            fig.push(&series, "Speed (tokens/s)", out.record.generation_speed());
            fig.push(&series, "TTFT (s)", out.record.ttft());
            fig.push(&series, "ITL (s)", out.record.mean_itl());
        }
    }
    fig
}

/// Figure 9: generation speed on the 4-GPU cluster for the seven model pairs
/// of Table III, PipeInfer vs speculative inference.
pub fn fig9_gpu_speed(scale: BenchScale) -> Figure {
    let mut fig = Figure::new("Fig. 9", "4-GPU cluster generation speed", "tokens/s");
    let config = gen_config(scale, 5);
    for pair in ModelPair::table3() {
        for strategy in [InferenceStrategy::PipeInfer, InferenceStrategy::Speculative] {
            let out = run_strategy(strategy, &pair, ClusterSpec::gpu_cluster(), &config);
            fig.push(strategy.name(), &pair.name, Metric::Speed.of(&out.record));
        }
    }
    fig
}

/// Figure 10: prompt-to-prompt variance on the 4-GPU cluster
/// (Senku-70B + TinyLlama), PipeInfer vs speculative inference.
pub fn fig10_prompt_variance(scale: BenchScale) -> Figure {
    let mut fig = Figure::new(
        "Fig. 10",
        "Prompt-to-prompt variance (Senku-70B)",
        "tokens/s",
    );
    let pair = ModelPair::senku_tinyllama();
    let prompts = [
        ("Prompt 1 (explain)", 11u64),
        ("Prompt 2 (write a paper)", 12),
        ("Prompt 3 (roleplay)", 13),
        ("Prompt 4 (code generation)", 14),
    ];
    for (label, tag) in prompts {
        let config = gen_config(scale, tag);
        for strategy in [InferenceStrategy::PipeInfer, InferenceStrategy::Speculative] {
            let out = run_strategy(strategy, &pair, ClusterSpec::gpu_cluster(), &config);
            fig.push(strategy.name(), label, Metric::Speed.of(&out.record));
        }
    }
    fig
}

/// Serving-experiment shape: identical traffic replayed against every
/// strategy over one prepared deployment each.
#[derive(Debug, Clone, Copy)]
pub struct ServingScale {
    /// Requests per workload.
    pub n_requests: usize,
    /// In-flight window (and worker-pool width) of the server.
    pub max_in_flight: usize,
    /// Tokens generated per request.
    pub n_generate: usize,
    /// Cluster-C node count the deployments are prepared for.
    pub n_nodes: usize,
}

impl ServingScale {
    /// Derives the serving experiment size from the bench scale: the quick
    /// profile serves 12 short requests, the paper profile a longer stream.
    pub fn from(scale: BenchScale) -> Self {
        Self {
            n_requests: if scale.n_generate >= 512 { 32 } else { 12 },
            max_in_flight: 8,
            n_generate: (scale.n_generate / 4).max(8),
            n_nodes: 8,
        }
    }
}

/// The deployments the serving experiments compare: the three paper
/// strategies plus tree speculation, in figure order.
pub fn serving_deployments() -> Vec<Deployment> {
    vec![
        Deployment::new(IterativeStrategy),
        Deployment::new(SpeculativeStrategy),
        Deployment::new(PipeInferStrategy::new(PipeInferConfig::paper_default())),
        Deployment::new(TreeSpeculationStrategy::default()),
    ]
}

/// Serving figures: goodput and latency percentiles per strategy, one figure
/// per strategy, under *identical* steady / bursty / mixed traffic.
///
/// This is the paper's "varied workloads" claim made measurable: every
/// strategy owns one prepared deployment (weights and layout built once) and
/// serves the same request streams through the continuous-batching
/// `pi-serve` scheduler; the figures report goodput plus p50/p99 end-to-end
/// and TTFT latency per workload shape, and — since the tree strategy landed
/// — the speculation-quality columns (acceptance rate,
/// accepted-tokens-per-verify, tree utilization).
pub fn fig_serving(scale: BenchScale) -> Vec<Figure> {
    use pi_serve::{
        BurstyWorkload, MixedWorkload, Server, ServerConfig, SteadyWorkload, WorkloadGen,
    };

    let serving = ServingScale::from(scale);
    let pair = ModelPair::dolphin_tinyllama();
    let base = GenConfig {
        prompt: make_prompt(scale, 6),
        n_generate: serving.n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };
    // The sim's virtual clock runs at paper scale (a 70B pipeline serves a
    // few tokens per second), so arrivals are spaced in virtual seconds.
    let mean_gap = serving.n_generate as f64 / 16.0;
    let workloads: Vec<Box<dyn WorkloadGen>> = vec![
        Box::new(SteadyWorkload {
            base: base.clone(),
            n_requests: serving.n_requests,
            interarrival: mean_gap,
        }),
        Box::new(BurstyWorkload {
            base: base.clone(),
            n_requests: serving.n_requests,
            mean_interarrival: mean_gap,
            seed: ORACLE_SEED,
        }),
        Box::new(MixedWorkload {
            base: base.clone(),
            n_requests: serving.n_requests,
            mean_interarrival: mean_gap,
            prompt_len: (scale.prompt_len / 2, scale.prompt_len),
            n_generate: (serving.n_generate / 2, serving.n_generate),
            seed: ORACLE_SEED + 1,
        }),
    ];

    let mut figures = Vec::new();
    for deployment in serving_deployments() {
        let mode = sim_mode(&pair, ClusterSpec::cluster_c(serving.n_nodes));
        let server = Server::new(
            deployment.prepare(&mode, serving.n_nodes),
            ServerConfig {
                max_in_flight: serving.max_in_flight,
            },
        );
        let mut fig = Figure::new(
            &format!("Serving ({})", server.strategy_name()),
            &format!(
                "{} requests over {} nodes, window {}",
                serving.n_requests, serving.n_nodes, serving.max_in_flight
            ),
            "tok/s | s",
        );
        for workload in &workloads {
            let report = server.serve(workload.generate());
            report.to_figure(&mut fig, workload.name());
        }
        figures.push(fig);
    }
    figures
}

/// The shared-prefix serving stream: `shared_fraction` of the requests open
/// with one seeded system prompt (the 90 %-shared workload of the KV-pool
/// gate), the rest are fully random prompts of the same total length.  Both
/// populations draw identical suffix/arrival distributions, so any latency
/// difference is attributable to prefix-cache hits.
pub fn shared_prefix_workload(
    scale: BenchScale,
    shared_fraction: f64,
) -> pi_serve::SharedPrefixWorkload {
    let serving = ServingScale::from(scale);
    pi_serve::SharedPrefixWorkload {
        base: GenConfig {
            prompt: make_prompt(scale, 6),
            n_generate: serving.n_generate,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 8192,
        },
        n_requests: serving.n_requests,
        mean_interarrival: serving.n_generate as f64 / 16.0,
        shared_fraction,
        prefix_len: (scale.prompt_len, scale.prompt_len + scale.prompt_len / 2),
        suffix_len: ((scale.prompt_len / 8).max(2), (scale.prompt_len / 4).max(4)),
        seed: ORACLE_SEED + 2,
    }
}

/// Measurements behind the shared-prefix serving gate (see
/// [`fig_shared_prefix`]).
#[derive(Debug, Clone, Copy)]
pub struct SharedPrefixGate {
    /// p50 time-to-first-token serving the 90 %-shared stream over the page
    /// pool (prefill skipped for cached prefixes).
    pub pooled_ttft_p50: f64,
    /// p50 time-to-first-token for the identical stream on flat per-request
    /// caches (every prompt prefilled from scratch).
    pub flat_ttft_p50: f64,
    /// Fraction of pooled admissions that matched a committed prefix.
    pub prefix_hit_rate: f64,
    /// Largest in-flight window the *shared* stream sustains with zero
    /// admission refusals at [`SharedPrefixGate::pool_pages`] pages.
    pub shared_max_window: usize,
    /// Largest refusal-free window for the unshared stream of identical
    /// lengths at the same pool size.
    pub unshared_max_window: usize,
    /// Pool size (pages) used for the window probe.
    pub pool_pages: usize,
}

/// The paged-KV serving experiment: the 90 %-shared-system-prompt stream
/// served by PipeInfer over a page pool vs the identical stream on flat
/// per-request caches, plus the max-sustainable-window probe at a
/// constrained pool size.
///
/// Two gates ride on the returned measurements (CI runs the `serving` bench
/// with `PIPEINFER_BENCH_ASSERT=1`): prefix sharing must cut p50 TTFT, and
/// at a fixed page budget the shared stream must sustain a strictly larger
/// refusal-free in-flight window than unshared traffic of identical lengths
/// (the pool holds the shared prefix once instead of once per request).
pub fn fig_shared_prefix(scale: BenchScale) -> (Figure, SharedPrefixGate) {
    use pi_model::{KvPagePool, KvPoolConfig};
    use pi_serve::{admission_order, pool_admission_spans, Server, ServerConfig, WorkloadGen};

    let serving = ServingScale::from(scale);
    let workload = shared_prefix_workload(scale, 0.9);
    let tokens_per_page = 16;
    // Worst-case pages one request pins when nothing is shared: longest
    // system prompt + longest suffix + the generation budget.
    let flat_pages = (scale.prompt_len
        + scale.prompt_len / 2
        + (scale.prompt_len / 4).max(4)
        + serving.n_generate)
        .div_ceil(tokens_per_page);

    let deployment = Deployment::new(PipeInferStrategy::new(PipeInferConfig::paper_default()));
    let mode = sim_mode(
        &ModelPair::dolphin_tinyllama(),
        ClusterSpec::cluster_c(serving.n_nodes),
    );
    let serve = |pooled: bool| {
        let mut prepared = deployment.prepare(&mode, serving.n_nodes);
        if pooled {
            // Generous pool: the TTFT comparison measures prefill reuse, not
            // admission pressure.
            prepared = prepared.with_kv_pool(KvPagePool::new(KvPoolConfig {
                tokens_per_page,
                n_pages: serving.n_requests * flat_pages,
            }));
        }
        Server::new(
            prepared,
            ServerConfig {
                max_in_flight: serving.max_in_flight,
            },
        )
        .serve(workload.generate())
    };
    let pooled = serve(true);
    let flat = serve(false);

    let mut fig = Figure::new(
        "Serving (shared prefix)",
        &format!(
            "90 % shared system prompt, {} requests over {} nodes, window {}",
            serving.n_requests, serving.n_nodes, serving.max_in_flight
        ),
        "tok/s | s",
    );
    pooled.to_figure(&mut fig, "paged pool");
    flat.to_figure(&mut fig, "flat caches");

    // Max sustainable window: largest in-flight bound whose admission
    // pre-pass completes with zero refusals at a page budget that fits only
    // a few unshared requests.  Pure pool arithmetic — no model execution.
    let constrained = KvPoolConfig {
        tokens_per_page,
        n_pages: 4 * flat_pages,
    };
    let max_window = |w: &pi_serve::SharedPrefixWorkload| {
        let requests = w.generate();
        let order = admission_order(&requests);
        let mut best = 0;
        for win in 1..=2 * serving.max_in_flight {
            let pool = KvPagePool::new(constrained);
            pool_admission_spans(&pool, &requests, &order, win);
            if pool.stats().refusals == 0 {
                best = win;
            } else {
                break;
            }
        }
        best
    };
    let gate = SharedPrefixGate {
        pooled_ttft_p50: pooled.ttft_summary().p50,
        flat_ttft_p50: flat.ttft_summary().p50,
        prefix_hit_rate: pooled.prefix_hit_rate(),
        shared_max_window: max_window(&workload),
        unshared_max_window: max_window(&shared_prefix_workload(scale, 0.0)),
        pool_pages: constrained.n_pages,
    };
    (fig, gate)
}

/// Measurements behind the cohort-batching serving gate (see
/// [`fig_cohort_batching`]).
#[derive(Debug, Clone, Copy)]
pub struct CohortBatchingGate {
    /// Goodput serving the steady stream with iteration-level batching:
    /// every decode step fuses all in-flight micro-batches into one forest
    /// GEMM per stage.
    pub fused_goodput: f64,
    /// Goodput of the request-granularity baseline: the identical step loop
    /// and admission schedule, but each request's micro-batch evaluated
    /// alone (a full per-stage weight stream per request per iteration).
    pub unfused_goodput: f64,
    /// Mean requests fused per decode iteration on the fused path.
    pub mean_cohort_width: f64,
}

/// The iteration-level batching experiment: one steady 8-request stream
/// served twice over the same prepared PipeInfer deployment — once through
/// [`Server::serve_stepped`] (cross-request forest GEMMs) and once through
/// [`Server::serve_stepped_unfused`] (request-granularity decode, one weight
/// stream per request per step).  Identical traffic, seed and admission
/// schedule; per-request token streams are byte-identical by construction,
/// so the entire goodput difference is the amortised weight stream.
///
/// The CI gate (the `serving` bench with `PIPEINFER_BENCH_ASSERT=1`) rides
/// on the returned measurements: fused decode must beat the
/// request-granularity baseline on goodput, and the stream must form real
/// cohorts (mean width > 2).
///
/// [`Server::serve_stepped`]: pi_serve::Server::serve_stepped
/// [`Server::serve_stepped_unfused`]: pi_serve::Server::serve_stepped_unfused
pub fn fig_cohort_batching(scale: BenchScale) -> (Figure, CohortBatchingGate) {
    use pi_serve::{Server, ServerConfig, SteadyWorkload, WorkloadGen};

    let serving = ServingScale::from(scale);
    let pair = ModelPair::dolphin_tinyllama();
    // A dense steady stream: arrivals far tighter than service times, so the
    // full window is in flight almost immediately and stays saturated.
    let workload = SteadyWorkload {
        base: GenConfig {
            prompt: make_prompt(scale, 6),
            n_generate: serving.n_generate,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 8192,
        },
        n_requests: 8,
        interarrival: 0.05,
    };
    let deployment = Deployment::new(PipeInferStrategy::new(PipeInferConfig::paper_default()));
    let mode = sim_mode(&pair, ClusterSpec::cluster_c(serving.n_nodes));
    let server = Server::new(
        deployment.prepare(&mode, serving.n_nodes),
        ServerConfig { max_in_flight: 8 },
    );
    let fused = server.serve_stepped(workload.generate());
    let unfused = server.serve_stepped_unfused(workload.generate());

    let mut fig = Figure::new(
        "Serving (cohort batching)",
        &format!(
            "steady 8-request stream over {} nodes, fused forest vs request-granularity decode",
            serving.n_nodes
        ),
        "tok/s | s",
    );
    fused.to_figure(&mut fig, "fused forest");
    unfused.to_figure(&mut fig, "request-granularity");
    let gate = CohortBatchingGate {
        fused_goodput: fused.goodput(),
        unfused_goodput: unfused.goodput(),
        mean_cohort_width: fused.mean_cohort_width(),
    };
    (fig, gate)
}

/// The cohort-batching regression gate, read off an already-computed
/// [`fig_cohort_batching`] figure.
pub fn cohort_batching_gate_of(fig: &Figure) -> CohortBatchingGate {
    let col = |series: &str, x: &str| {
        fig.value(series, x)
            .unwrap_or_else(|| panic!("figure is missing {series}/{x}"))
    };
    CohortBatchingGate {
        fused_goodput: col("fused forest", "goodput tok/s"),
        unfused_goodput: col("request-granularity", "goodput tok/s"),
        mean_cohort_width: col("fused forest", "cohort width"),
    }
}

/// The seeded 52 %-acceptance gate stream: mixed prompt/output lengths over
/// the Goliath + XWin-7B pair, shared by [`tree_vs_linear_gate`],
/// [`fig_draft_rank`] and [`draft_rank_gate`] so the figure and the CI gates
/// always measure the same workload.  Mixed lengths make every request
/// decode a genuinely different token stream (identical requests would
/// replay one experiment N times).
fn gate_workload(scale: BenchScale) -> pi_serve::MixedWorkload {
    let serving = ServingScale::from(scale);
    pi_serve::MixedWorkload {
        base: GenConfig {
            prompt: make_prompt(scale, 6),
            n_generate: serving.n_generate,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 8192,
        },
        n_requests: serving.n_requests,
        mean_interarrival: serving.n_generate as f64 / 16.0,
        prompt_len: (scale.prompt_len / 2, scale.prompt_len),
        n_generate: (serving.n_generate, serving.n_generate * 2),
        seed: ORACLE_SEED,
    }
}

/// The tree-speculation regression gate: serves one seeded mixed-length
/// stream through `TreeSpeculationStrategy` and `SpeculativeStrategy` at the same
/// verify-batch budget over the 52 %-acceptance Goliath + XWin-7B pair (the
/// regime where hedging must pay off), returning
/// `(tree, linear)` mean accepted-tokens-per-verify.
///
/// CI runs this with `PIPEINFER_BENCH_ASSERT=1` (see the `serving` bench
/// target), failing the build if tree speculation stops beating linear
/// speculation on this workload.  The stream uses mixed prompt/output
/// lengths so every request decodes a genuinely different token stream
/// (identical requests would replay one experiment N times); window 1
/// serialises execution so the cross-request shape feedback — and therefore
/// the result — is deterministic.
pub fn tree_vs_linear_gate(scale: BenchScale) -> (f64, f64) {
    use pi_serve::{Server, ServerConfig, WorkloadGen};

    let serving = ServingScale::from(scale);
    let pair = ModelPair::goliath_xwin7b();
    let workload = gate_workload(scale);
    let serve = |deployment: Deployment| {
        let mode = sim_mode(&pair, ClusterSpec::cluster_c(serving.n_nodes));
        Server::new(
            deployment.prepare(&mode, serving.n_nodes),
            ServerConfig { max_in_flight: 1 },
        )
        .serve(workload.generate())
        .mean_tokens_per_run()
    };
    let tree = serve(Deployment::new(TreeSpeculationStrategy::default()));
    let linear = serve(Deployment::new(SpeculativeStrategy));
    (tree, linear)
}

/// The four PipeInfer deployment variants of the Fig. 3 layout study:
/// draft placement (head-hosted vs dedicated rank) × continuous micro-batch
/// shape (chain vs tree), in figure order.
pub fn draft_rank_variants() -> Vec<(&'static str, PipeInferConfig)> {
    use pipeinfer_core::DraftPlacement;
    vec![
        ("head-hosted / chain", PipeInferConfig::paper_default()),
        ("head-hosted / tree", PipeInferConfig::tree_micro()),
        ("dedicated / chain", PipeInferConfig::dedicated_draft_rank()),
        (
            "dedicated / tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
        ),
    ]
}

/// The Fig. 3 layout study: the four PipeInfer variants of
/// [`draft_rank_variants`] serving the *same* seeded 52 %-acceptance
/// mixed-length stream (Goliath + XWin-7B) over one prepared deployment
/// each.  One series per variant; the columns are the serving metrics of
/// `ServeReport::to_figure` — goodput, latency percentiles, speculation
/// quality, per-rank draft traffic and evaluations saved by cancellation.
pub fn fig_draft_rank(scale: BenchScale) -> Figure {
    use pi_serve::{Server, ServerConfig, WorkloadGen};

    let serving = ServingScale::from(scale);
    let pair = ModelPair::goliath_xwin7b();
    let workload = gate_workload(scale);
    let mut fig = Figure::new(
        "Fig. 3 layout",
        &format!(
            "PipeInfer draft placement × micro-batch shape, {} mixed requests over {} nodes",
            serving.n_requests, serving.n_nodes
        ),
        "tok/s | s",
    );
    for (name, config) in draft_rank_variants() {
        let deployment = Deployment::new(PipeInferStrategy::new(config));
        let mode = sim_mode(&pair, ClusterSpec::cluster_c(serving.n_nodes));
        let report = Server::new(
            deployment.prepare(&mode, serving.n_nodes),
            ServerConfig { max_in_flight: 1 },
        )
        .serve(workload.generate());
        report.to_figure(&mut fig, name);
    }
    fig
}

/// The dedicated-draft-rank regression gate, read off an already-computed
/// [`fig_draft_rank`] figure: `(dedicated, head_hosted)` accepted tokens
/// per second of stream makespan (goodput) of the two chain-shaped layout
/// variants on the seeded 52 %-acceptance stream.
pub fn draft_rank_gate_of(fig: &Figure) -> (f64, f64) {
    let goodput = |series: &str| {
        fig.value(series, "goodput tok/s")
            .unwrap_or_else(|| panic!("figure is missing the {series} goodput"))
    };
    (goodput("dedicated / chain"), goodput("head-hosted / chain"))
}

/// The dedicated-draft-rank regression gate: serves the seeded
/// 52 %-acceptance mixed-length stream through the four-way layout study
/// ([`fig_draft_rank`]) and returns `(dedicated, head_hosted)` goodput of
/// the two chain-shaped variants.  Callers that already hold the figure
/// should use [`draft_rank_gate_of`] instead of re-serving the streams.
///
/// CI runs this with `PIPEINFER_BENCH_ASSERT=1` (see the `serving` bench
/// target), failing the build if moving drafting off the head stops paying
/// for itself on this workload.  Window 1 serialises execution so the
/// result is deterministic.
pub fn draft_rank_gate(scale: BenchScale) -> (f64, f64) {
    draft_rank_gate_of(&fig_draft_rank(scale))
}

/// Link-latency multipliers of the degradation sweep: nominal cluster-C
/// InfiniBand up to four orders of magnitude slower (µs-class links
/// degraded to the tens of milliseconds of a congested WAN hop).
pub const LATENCY_MULTIPLIERS: [u32; 3] = [1, 100, 10_000];

/// Seed of the jittered series' delay-fault schedule.
const JITTER_SEED: u64 = 0x6A69_7474;

/// A seeded all-links jitter schedule for an `n`-rank cluster: every
/// message has a 50% chance of an extra delay uniform in `[0, 8 × latency)`.
fn jitter_plan(n: usize, latency_s: f64) -> pi_cluster::FaultPlan {
    let mut plan = pi_cluster::FaultPlan::seeded(JITTER_SEED);
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                plan = plan.on_link(
                    src,
                    dst,
                    pi_cluster::LinkFaults::delay(0.5, 0.0, 8.0 * latency_s),
                );
            }
        }
    }
    plan
}

/// The link-latency/jitter degradation sweep: Goliath + XWin-7B over 8
/// nodes of cluster C with the interconnect latency scaled by each
/// [`LATENCY_MULTIPLIERS`] entry, generation speed per strategy — plus a
/// `(jitter)` series per speculation strategy where every link carries a
/// seeded delay-fault schedule ([`LinkFaults::delay`], 50% of messages
/// delayed by up to 8× the scaled link latency).
///
/// This is the robustness claim behind asynchronous speculation made
/// measurable: synchronous speculative verification exposes every draft →
/// verify round trip on the critical path, while PipeInfer overlaps
/// drafting with verification, pays no more added per-token latency as
/// links slow down, and therefore stays strictly faster across the sweep —
/// with and without jitter.
///
/// [`LinkFaults::delay`]: pi_cluster::LinkFaults::delay
pub fn fig_latency_sweep(scale: BenchScale) -> Figure {
    let mut fig = Figure::new(
        "Latency sweep",
        "Generation speed vs link latency (8 nodes, Goliath + XWin-7B)",
        "tokens/s",
    );
    let pair = ModelPair::goliath_xwin7b();
    let config = gen_config(scale, 7);
    let n = 8;
    for &mult in &LATENCY_MULTIPLIERS {
        let mut cluster = ClusterSpec::cluster_c(n);
        cluster.interconnect.latency_s *= f64::from(mult);
        let latency_s = cluster.interconnect.latency_s;
        let mode = sim_mode(&pair, cluster);
        let x = format!("{mult}x latency");
        for strategy in InferenceStrategy::all() {
            let prepared = deployment_for(strategy).prepare(&mode, n);
            let clean = prepared.run(&config);
            fig.push(strategy.name(), &x, Metric::Speed.of(&clean.record));
            if strategy == InferenceStrategy::Iterative {
                continue;
            }
            let jittered = prepared.run_faulted(&config, jitter_plan(n, latency_s));
            fig.push(
                &format!("{} (jitter)", strategy.name()),
                &x,
                Metric::Speed.of(&jittered.record),
            );
        }
    }
    fig
}

/// The latency-tolerance regression gate, read off an already-computed
/// [`fig_latency_sweep`] figure: `(pipeinfer, speculative)` generation
/// speed at the *highest* latency multiplier of the sweep.
pub fn latency_tolerance_gate_of(fig: &Figure) -> (f64, f64) {
    let x = format!(
        "{}x latency",
        LATENCY_MULTIPLIERS[LATENCY_MULTIPLIERS.len() - 1]
    );
    let speed = |series: &str| {
        fig.value(series, &x)
            .unwrap_or_else(|| panic!("figure is missing the {series} speed at {x}"))
    };
    (speed("PipeInfer"), speed("Speculative"))
}

/// The latency-tolerance regression gate: runs the link-latency degradation
/// sweep ([`fig_latency_sweep`]) and returns `(pipeinfer, speculative)`
/// generation speed at the high-latency end.  Callers that already hold the
/// figure should use [`latency_tolerance_gate_of`] instead of re-running the
/// sweep.
///
/// CI runs this with `PIPEINFER_BENCH_ASSERT=1` (see the `serving` bench
/// target), failing the build if asynchronous speculation stops out-degrading
/// the synchronous baseline on slow links.
pub fn latency_tolerance_gate(scale: BenchScale) -> (f64, f64) {
    latency_tolerance_gate_of(&fig_latency_sweep(scale))
}

/// Table I / Table III: model pairs with size, quantization and acceptance
/// rate, rendered as text.
pub fn table_model_pairs(pairs: &[ModelPair], title: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(
        out,
        "{:<32} {:>10} {:<32} {:>10} {:>12}",
        "Target", "Size", "Draft", "Size", "Acceptance"
    );
    for p in pairs {
        let _ = writeln!(
            out,
            "{:<32} {:>8.1}GB {:<32} {:>8.1}GB {:>11.1}%{}",
            p.target.describe(),
            p.target.resident_bytes() as f64 / 1e9,
            p.draft.describe(),
            p.draft.resident_bytes() as f64 / 1e9,
            p.acceptance_rate * 100.0,
            if p.acceptance_from_paper {
                ""
            } else {
                " (est.)"
            },
        );
    }
    out
}

/// Table II / Table IV: hardware testbeds, rendered as text.
pub fn table_testbeds() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== Table II / Table IV: testbeds ===");
    for cluster in [
        ClusterSpec::cluster_a(8),
        ClusterSpec::cluster_b(13),
        ClusterSpec::cluster_c(32),
        ClusterSpec::gpu_cluster(),
    ] {
        let _ = writeln!(
            out,
            "Cluster {:<4} nodes={:<3} node0={:<22} eff-bw={:>6.0} GB/s eff-flops={:>6.2} TF link: {:.1} µs / {:.1} GB/s",
            cluster.name,
            cluster.n_nodes(),
            cluster.node(0).name,
            cluster.node(0).mem_bandwidth_bps / 1e9,
            cluster.node(0).compute_flops / 1e12,
            cluster.interconnect.latency_s * 1e6,
            cluster.interconnect.bandwidth_bps / 1e9,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> BenchScale {
        BenchScale {
            prompt_len: 16,
            n_generate: 48,
        }
    }

    #[test]
    fn scales() {
        assert!(BenchScale::paper().n_generate > BenchScale::quick().n_generate);
        assert_eq!(BenchScale::paper().prompt_len, 128);
        let p = make_prompt(BenchScale::quick(), 1);
        assert_eq!(p.len(), 32);
        assert_ne!(p, make_prompt(BenchScale::quick(), 2));
    }

    #[test]
    fn dolphin_sweep_has_expected_shape() {
        let [speed, ttft, itl] = cluster_c_sweep(
            "Fig. 4a",
            "Fig. 5a",
            "Fig. 6a",
            "Dolphin-70B",
            &[("TinyLlama", ModelPair::dolphin_tinyllama())],
            tiny_scale(),
        );
        assert_eq!(speed.x_labels().len(), CLUSTER_C_NODES.len());
        assert_eq!(speed.series_labels().len(), 3);
        // PipeInfer must beat iterative at every node count, and speculative
        // at 8+ nodes (the paper's headline ordering).
        for n in CLUSTER_C_NODES {
            let x = format!("{n} Node");
            let pipe = speed.value("Pipe. (TinyLlama)", &x).unwrap();
            let iter = speed.value("Iter.", &x).unwrap();
            assert!(pipe > iter, "{x}: pipe {pipe} <= iter {iter}");
        }
        let pipe8 = speed.value("Pipe. (TinyLlama)", "8 Node").unwrap();
        let spec8 = speed.value("Spec. (TinyLlama)", "8 Node").unwrap();
        assert!(pipe8 > spec8);
        // TTFT: speculative pays the drafting latency, PipeInfer does not.
        let spec_ttft = ttft.value("Spec. (TinyLlama)", "8 Node").unwrap();
        let pipe_ttft = ttft.value("Pipe. (TinyLlama)", "8 Node").unwrap();
        assert!(spec_ttft > pipe_ttft);
        // ITL tracks speed ordering.
        let pipe_itl = itl.value("Pipe. (TinyLlama)", "8 Node").unwrap();
        let iter_itl = itl.value("Iter.", "8 Node").unwrap();
        assert!(pipe_itl < iter_itl);
    }

    #[test]
    fn memory_efficiency_favours_pipeinfer_over_speculative() {
        let fig = fig7a_memory_efficiency(tiny_scale());
        let pipe = fig.value("PipeInfer (Dolphin)", "8 Node").unwrap();
        let spec = fig.value("Speculative (Dolphin)", "8 Node").unwrap();
        assert!(pipe > spec);
        assert!(pipe > 0.0 && spec > 0.0);
    }

    #[test]
    fn ablation_figure_contains_all_variants() {
        let fig = fig8_ablations(tiny_scale());
        assert_eq!(fig.series_labels().len(), 9);
        let full = fig.value("Goliath: PipeInfer", "Speed (tokens/s)").unwrap();
        let no_cont = fig
            .value("Goliath: No cont. spec.", "Speed (tokens/s)")
            .unwrap();
        assert!(full >= no_cont, "continuous speculation must not hurt");
    }

    #[test]
    fn gpu_figure_covers_all_pairs() {
        let fig = fig9_gpu_speed(tiny_scale());
        assert_eq!(fig.x_labels().len(), 7);
        assert_eq!(fig.series_labels().len(), 2);
        // On the 4-GPU testbed the two strategies are close (dedicating one
        // of only four GPUs to the draft model costs PipeInfer a quarter of
        // the aggregate bandwidth); both must at least be in the same
        // ballpark and positive.  See EXPERIMENTS.md for the comparison with
        // the paper's Fig. 9.
        let pipe = fig
            .value("PipeInfer", "Senku-70B + TinyLlama-1.1B")
            .unwrap();
        let spec = fig
            .value("Speculative", "Senku-70B + TinyLlama-1.1B")
            .unwrap();
        assert!(pipe > 0.0 && spec > 0.0);
        assert!(pipe > 0.6 * spec && spec > 0.6 * pipe);
    }

    #[test]
    fn prompt_variance_is_lower_for_pipeinfer() {
        let fig = fig10_prompt_variance(tiny_scale());
        let collect = |series: &str| -> Vec<f64> {
            fig.x_labels()
                .iter()
                .map(|x| fig.value(series, x).unwrap())
                .collect()
        };
        let pipe = pi_metrics::Summary::of(&collect("PipeInfer"));
        let spec = pi_metrics::Summary::of(&collect("Speculative"));
        assert!(pipe.mean > 0.0 && spec.mean > 0.0);
        // Relative spread: PipeInfer is the steadier of the two.
        assert!(pipe.std_dev / pipe.mean <= spec.std_dev / spec.mean + 0.05);
    }

    #[test]
    fn serving_figures_cover_all_strategies_and_metrics() {
        let figs = fig_serving(tiny_scale());
        assert_eq!(figs.len(), 4, "one figure per strategy incl. tree");
        for fig in &figs {
            // Three workload series, eighteen metric columns each (incl.
            // the trace-derived bubble fraction, 0.0 for untraced serving,
            // the failover count, 0 on fault-free streams, the four KV-pool
            // columns, 0 for pool-less serving, and the cohort width, 0
            // under request-granularity thread-pool serving).
            assert_eq!(fig.series_labels(), vec!["steady", "bursty", "mixed"]);
            assert_eq!(fig.x_labels().len(), 18);
            for series in fig.series_labels() {
                let goodput = fig.value(&series, "goodput tok/s").unwrap();
                let p50 = fig.value(&series, "p50 e2e s").unwrap();
                let p99 = fig.value(&series, "p99 e2e s").unwrap();
                assert!(goodput > 0.0, "{}/{series}: goodput {goodput}", fig.id);
                assert!(p99 >= p50 && p50 > 0.0, "{}/{series}", fig.id);
            }
        }
        // Under identical bursty traffic PipeInfer must clear more goodput
        // than the iterative baseline (the paper's utilisation claim, now
        // under a request stream).
        let goodput = |fig: &Figure| fig.value("bursty", "goodput tok/s").unwrap();
        let iter = goodput(&figs[0]);
        let pipe = goodput(&figs[2]);
        assert!(
            pipe > iter,
            "serving goodput: PipeInfer {pipe} <= Iterative {iter}"
        );
        // Only the tree figure reports non-zero tree utilization.
        assert_eq!(figs[1].value("bursty", "tree util"), Some(0.0));
        assert!(figs[3].value("bursty", "tree util").unwrap() > 0.0);
        assert!(figs[3].id.contains("TreeSpeculation"));
    }

    #[test]
    fn draft_rank_figure_covers_the_four_way_matrix() {
        let fig = fig_draft_rank(tiny_scale());
        let series = fig.series_labels();
        assert_eq!(series.len(), 4);
        assert!(series.contains(&"head-hosted / chain".to_string()));
        assert!(series.contains(&"dedicated / tree".to_string()));
        for s in &series {
            assert!(fig.value(s, "goodput tok/s").unwrap() > 0.0, "{s}");
        }
        // Only the dedicated layouts move draft traffic over the wire.
        assert_eq!(fig.value("head-hosted / chain", "draft kB"), Some(0.0));
        assert_eq!(fig.value("head-hosted / tree", "draft kB"), Some(0.0));
        assert!(fig.value("dedicated / chain", "draft kB").unwrap() > 0.0);
        assert!(fig.value("dedicated / tree", "draft kB").unwrap() > 0.0);
    }

    #[test]
    fn latency_sweep_shows_async_speculation_degrading_more_gently() {
        let fig = fig_latency_sweep(tiny_scale());
        assert_eq!(fig.x_labels().len(), LATENCY_MULTIPLIERS.len());
        // Three clean strategy series plus a jittered variant per
        // speculation strategy.
        assert_eq!(fig.series_labels().len(), 5);
        let speed = |series: &str, mult: u32| {
            fig.value(series, &format!("{mult}x latency"))
                .unwrap_or_else(|| panic!("missing {series} at {mult}x"))
        };
        let first = LATENCY_MULTIPLIERS[0];
        let last = LATENCY_MULTIPLIERS[LATENCY_MULTIPLIERS.len() - 1];
        for series in fig.series_labels() {
            let mut prev = f64::INFINITY;
            for &mult in &LATENCY_MULTIPLIERS {
                let s = speed(&series, mult);
                assert!(s > 0.0, "{series}/{mult}x");
                assert!(s <= prev + 1e-9, "{series} sped up at {mult}x");
                prev = s;
            }
        }
        // The robustness claim, twice over: async speculation stays
        // strictly faster than the synchronous baseline at every point of
        // the sweep, on clean links and under seeded jitter alike.
        for &mult in &LATENCY_MULTIPLIERS {
            assert!(
                speed("PipeInfer", mult) > speed("Speculative", mult),
                "clean links, {mult}x"
            );
            assert!(
                speed("PipeInfer (jitter)", mult) > speed("Speculative (jitter)", mult),
                "jittered links, {mult}x"
            );
        }
        // And it degrades no more steeply: the per-token latency added by
        // slowing the links down is no larger for PipeInfer than for the
        // synchronous baseline (both pay the same wire costs, PipeInfer
        // just hides more of them off the critical path).
        let added_itl = |series: &str| 1.0 / speed(series, last) - 1.0 / speed(series, first);
        assert!(
            added_itl("PipeInfer") <= added_itl("Speculative") + 1e-3,
            "PipeInfer added {:.4} s/token vs Speculative {:.4}",
            added_itl("PipeInfer"),
            added_itl("Speculative"),
        );
        // The CI gate reads the high-latency speeds off the same figure:
        // async speculation must win outright on slow links.
        let (pipe, spec) = latency_tolerance_gate_of(&fig);
        assert_eq!(pipe, speed("PipeInfer", last));
        assert_eq!(spec, speed("Speculative", last));
        assert!(
            pipe > spec,
            "high-latency gate: PipeInfer {pipe} <= Speculative {spec}"
        );
    }

    #[test]
    fn draft_rank_gate_dedicated_at_least_matches_head_hosted() {
        let (dedicated, head_hosted) = draft_rank_gate(tiny_scale());
        assert!(dedicated > 0.0 && head_hosted > 0.0);
        assert!(
            dedicated >= head_hosted,
            "dedicated layout {dedicated} tok/s < head-hosted {head_hosted} tok/s"
        );
    }

    #[test]
    fn cohort_batching_gate_fuses_and_wins() {
        let (fig, gate) = fig_cohort_batching(tiny_scale());
        // The gate can be read back off the figure's columns.
        let from_fig = cohort_batching_gate_of(&fig);
        assert_eq!(gate.fused_goodput, from_fig.fused_goodput);
        assert_eq!(gate.unfused_goodput, from_fig.unfused_goodput);
        assert_eq!(gate.mean_cohort_width, from_fig.mean_cohort_width);
        assert!(
            gate.fused_goodput > gate.unfused_goodput,
            "fused {} tok/s <= request-granularity {} tok/s",
            gate.fused_goodput,
            gate.unfused_goodput
        );
        assert!(
            gate.mean_cohort_width > 2.0,
            "stream failed to form cohorts: width {}",
            gate.mean_cohort_width
        );
        // Fusion never changes any stream: identical total tokens.
        let tokens = |series: &str| fig.value(series, "goodput tok/s").unwrap() > 0.0;
        assert!(tokens("fused forest") && tokens("request-granularity"));
    }

    #[test]
    fn tree_gate_beats_linear_on_the_seeded_workload() {
        let (tree, linear) = tree_vs_linear_gate(tiny_scale());
        assert!(
            tree > linear,
            "tree speculation {tree} <= linear speculation {linear} tok/verify"
        );
        // Both are genuine speculation results (> 1 token per verify run).
        assert!(linear > 1.0 && tree > 1.0);
    }

    #[test]
    fn tables_render() {
        let t1 = table_model_pairs(&ModelPair::table1(), "Table I");
        assert!(t1.contains("Dolphin"));
        assert!(t1.contains("79.0%"));
        let t3 = table_model_pairs(&ModelPair::table3(), "Table III");
        assert!(t3.contains("(est.)"));
        let t2 = table_testbeds();
        assert!(t2.contains("Cluster A"));
        assert!(t2.contains("Cluster C"));
    }

    #[test]
    fn constrained_cluster_figures_have_data() {
        let f7b = fig7b_constrained_ttft(tiny_scale());
        assert_eq!(f7b.series_labels().len(), 3);
        assert_eq!(f7b.x_labels().len(), 3);
        let f7c = fig7c_constrained_speed(tiny_scale());
        assert_eq!(f7c.x_labels().len(), 3);
        // PipeInfer beats speculative on the constrained cluster for the
        // poorly aligned Goliath pair (the paper's strongest case).
        let pipe = f7c.value("PipeInfer (Goliath)", "8 Node").unwrap();
        let spec = f7c.value("Speculative (Goliath)", "8 Node").unwrap();
        assert!(pipe > spec);
    }
}
