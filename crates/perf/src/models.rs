//! Model-pair presets matching the paper's Tables I and III.
//!
//! Each [`ModelPair`] bundles a target-model preset, a draft-model preset and
//! the draft/target *acceptance rate* the paper measured for that pairing.
//! The acceptance rate drives the synthetic alignment oracle when
//! reproducing the figures; the quantization formats drive the memory and
//! bandwidth model.
//!
//! GPU-experiment pairs (Table III) do not come with published acceptance
//! rates; plausible values are chosen to reproduce the qualitative ranking of
//! Fig. 9 (including the Dolphin 2.9 Llama-3 outlier where speculative
//! inference beat PipeInfer) and are flagged as estimates in EXPERIMENTS.md.

use pi_model::ModelConfig;
use pi_tensor::QuantKind;

/// A concrete checkpoint: geometry plus quantization, plus a multiplier for
/// models whose resident weights exceed their active weights (MoE).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPreset {
    /// Model geometry (active parameters for MoE models).
    pub cfg: ModelConfig,
    /// Stored quantization format.
    pub quant: QuantKind,
    /// Resident-weight multiplier (1.0 for dense models; 8/2 = 4.0 for
    /// Mixtral-8x22B where 2 of 8 experts are active per token).
    pub resident_multiplier: f64,
}

impl ModelPreset {
    /// Dense model preset.
    pub fn dense(cfg: ModelConfig, quant: QuantKind) -> Self {
        Self {
            cfg,
            quant,
            resident_multiplier: 1.0,
        }
    }

    /// Mixture-of-experts preset with the given resident multiplier.
    pub fn moe(cfg: ModelConfig, quant: QuantKind, resident_multiplier: f64) -> Self {
        Self {
            cfg,
            quant,
            resident_multiplier,
        }
    }

    /// Bytes of weights that must be resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        let active = self.quant.bytes_for(self.cfg.total_params());
        (active as f64 * self.resident_multiplier) as u64
    }

    /// Human-readable description, e.g. `"Dolphin 2.1 70B (Q3_K_M)"`.
    pub fn describe(&self) -> String {
        format!("{} ({})", self.cfg.name, self.quant.name())
    }
}

/// A target/draft pairing with its measured (or estimated) acceptance rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPair {
    /// Short name used in figures, e.g. `"Dolphin-70B + TinyLlama"`.
    pub name: String,
    /// Target model.
    pub target: ModelPreset,
    /// Speculative (draft) model.
    pub draft: ModelPreset,
    /// Per-token probability that a drafted token is accepted by the target.
    pub acceptance_rate: f64,
    /// Whether the acceptance rate is taken from the paper (`true`) or is an
    /// estimate chosen for the GPU experiments (`false`).
    pub acceptance_from_paper: bool,
}

impl ModelPair {
    fn new(
        name: &str,
        target: ModelPreset,
        draft: ModelPreset,
        acceptance_rate: f64,
        acceptance_from_paper: bool,
    ) -> Self {
        Self {
            name: name.to_string(),
            target,
            draft,
            acceptance_rate,
            acceptance_from_paper,
        }
    }

    // ----- Table I (CPU experiments) -----

    /// Dolphin 2.1 70B (Q3_K_M) + TinyLlama-1.1B OpenOrca (Q4_K_M), 79 %.
    pub fn dolphin_tinyllama() -> Self {
        Self::new(
            "Dolphin-70B + TinyLlama-1.1B",
            ModelPreset::dense(
                named(ModelConfig::llama2_70b(), "Dolphin 2.1 70B"),
                QuantKind::Q3K,
            ),
            ModelPreset::dense(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
            0.79,
            true,
        )
    }

    /// Dolphin 2.1 70B (Q3_K_M) + Orca-2 7B (Q4_K_M), 66 %.
    pub fn dolphin_orca2() -> Self {
        Self::new(
            "Dolphin-70B + Orca2-7B",
            ModelPreset::dense(
                named(ModelConfig::llama2_70b(), "Dolphin 2.1 70B"),
                QuantKind::Q3K,
            ),
            ModelPreset::dense(named(ModelConfig::llama2_7b(), "Orca 2 7B"), QuantKind::Q4K),
            0.66,
            true,
        )
    }

    /// Goliath 120B (Q2_K) + XWinLM 0.2 7B (Q4_K_M), 52 %.
    pub fn goliath_xwin7b() -> Self {
        Self::new(
            "Goliath-120B + XWin-7B",
            ModelPreset::dense(ModelConfig::goliath_120b(), QuantKind::Q2K),
            ModelPreset::dense(
                named(ModelConfig::llama2_7b(), "XWinLM 0.2 7B"),
                QuantKind::Q4K,
            ),
            0.52,
            true,
        )
    }

    /// Goliath 120B (Q2_K) + XWinLM 0.1 13B (Q4_K_M), 61 %.
    pub fn goliath_xwin13b() -> Self {
        Self::new(
            "Goliath-120B + XWin-13B",
            ModelPreset::dense(ModelConfig::goliath_120b(), QuantKind::Q2K),
            ModelPreset::dense(
                named(ModelConfig::llama2_13b(), "XWinLM 0.1 13B"),
                QuantKind::Q4K,
            ),
            0.61,
            true,
        )
    }

    /// Falcon 180B (Q3_K_M) + Falcon 7B (Q3_K_M), 68.675 %.
    pub fn falcon_7b() -> Self {
        Self::new(
            "Falcon-180B + Falcon-7B",
            ModelPreset::dense(ModelConfig::falcon_180b(), QuantKind::Q3K),
            ModelPreset::dense(ModelConfig::falcon_7b(), QuantKind::Q3K),
            0.68675,
            true,
        )
    }

    /// Falcon 180B (Q3_K_M) + Falcon 40B (Q3_K_M), 69.47 %.
    pub fn falcon_40b() -> Self {
        Self::new(
            "Falcon-180B + Falcon-40B",
            ModelPreset::dense(ModelConfig::falcon_180b(), QuantKind::Q3K),
            ModelPreset::dense(ModelConfig::falcon_40b(), QuantKind::Q3K),
            0.6947,
            true,
        )
    }

    /// All six CPU pairs of Table I, in table order.
    pub fn table1() -> Vec<Self> {
        vec![
            Self::dolphin_tinyllama(),
            Self::dolphin_orca2(),
            Self::goliath_xwin7b(),
            Self::goliath_xwin13b(),
            Self::falcon_7b(),
            Self::falcon_40b(),
        ]
    }

    // ----- Table III (GPU experiments) -----

    /// Senku 70B + TinyLlama-1.1B (estimated 76 % acceptance).
    pub fn senku_tinyllama() -> Self {
        Self::new(
            "Senku-70B + TinyLlama-1.1B",
            ModelPreset::dense(
                named(ModelConfig::llama2_70b(), "Senku 70B"),
                QuantKind::Q3K,
            ),
            ModelPreset::dense(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
            0.76,
            false,
        )
    }

    /// Senku 70B + LlongOrca 7B (estimated 70 %).
    pub fn senku_llongorca() -> Self {
        Self::new(
            "Senku-70B + LlongOrca-7B",
            ModelPreset::dense(
                named(ModelConfig::llama2_70b(), "Senku 70B"),
                QuantKind::Q3K,
            ),
            ModelPreset::dense(
                named(ModelConfig::llama2_7b(), "LlongOrca 7B"),
                QuantKind::Q4K,
            ),
            0.70,
            false,
        )
    }

    /// Dolphin 2.9 70B + Dolphin 2.9 8B (Llama-3 pair; estimated 40 % — the
    /// paper observed this pair as the outlier where speculative inference
    /// won).
    pub fn dolphin29_llama3() -> Self {
        Self::new(
            "Dolphin2.9-70B + Dolphin2.9-8B",
            ModelPreset::dense(
                named(ModelConfig::llama3_70b(), "Dolphin 2.9 70B"),
                QuantKind::Q3K,
            ),
            ModelPreset::dense(
                named(ModelConfig::llama3_8b(), "Dolphin 2.9 8B"),
                QuantKind::Q4K,
            ),
            0.40,
            false,
        )
    }

    /// Qwen 33B + Qwen 7B at Q5_K (estimated 72 %).
    pub fn qwen() -> Self {
        Self::new(
            "Qwen-33B + Qwen-7B",
            ModelPreset::dense(ModelConfig::qwen_33b(), QuantKind::Q5K),
            ModelPreset::dense(ModelConfig::qwen_7b(), QuantKind::Q5K),
            0.72,
            false,
        )
    }

    /// Mixtral 8x22B + Mistral 7B (estimated 62 %).
    pub fn mixtral_mistral() -> Self {
        Self::new(
            "Mixtral-8x22B + Mistral-7B",
            ModelPreset::moe(ModelConfig::mixtral_8x22b_active(), QuantKind::Q3K, 4.0),
            ModelPreset::dense(ModelConfig::mistral_7b(), QuantKind::Q4K),
            0.62,
            false,
        )
    }

    /// Yi 34B + Yi 9B (estimated 71 %).
    pub fn yi() -> Self {
        Self::new(
            "Yi-34B + Yi-9B",
            ModelPreset::dense(ModelConfig::yi_34b(), QuantKind::Q3K),
            ModelPreset::dense(ModelConfig::yi_9b(), QuantKind::Q4K),
            0.71,
            false,
        )
    }

    /// The seven GPU pairs of Table III / Fig. 9, in figure order.
    pub fn table3() -> Vec<Self> {
        vec![
            Self::senku_tinyllama(),
            Self::senku_llongorca(),
            Self::dolphin_tinyllama(),
            Self::dolphin29_llama3(),
            Self::qwen(),
            Self::mixtral_mistral(),
            Self::yi(),
        ]
    }
}

fn named(mut cfg: ModelConfig, name: &str) -> ModelConfig {
    cfg.name = name.to_string();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_pairs_with_paper_acceptance_rates() {
        let pairs = ModelPair::table1();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|p| p.acceptance_from_paper));
        let rates: Vec<f64> = pairs.iter().map(|p| p.acceptance_rate).collect();
        assert_eq!(rates, vec![0.79, 0.66, 0.52, 0.61, 0.68675, 0.6947]);
    }

    #[test]
    fn table3_has_seven_pairs() {
        assert_eq!(ModelPair::table3().len(), 7);
    }

    #[test]
    fn drafts_are_smaller_than_targets() {
        for p in ModelPair::table1().into_iter().chain(ModelPair::table3()) {
            assert!(
                p.draft.resident_bytes() < p.target.resident_bytes(),
                "{}: draft not smaller",
                p.name
            );
        }
    }

    #[test]
    fn target_footprints_are_in_expected_size_classes() {
        let dolphin = ModelPair::dolphin_tinyllama().target.resident_bytes() as f64 / 1e9;
        assert!(dolphin > 25.0 && dolphin < 35.0, "dolphin {dolphin} GB");
        let goliath = ModelPair::goliath_xwin7b().target.resident_bytes() as f64 / 1e9;
        assert!(goliath > 33.0 && goliath < 45.0, "goliath {goliath} GB");
        let falcon = ModelPair::falcon_7b().target.resident_bytes() as f64 / 1e9;
        assert!(falcon > 65.0 && falcon < 90.0, "falcon {falcon} GB");
    }

    #[test]
    fn mixtral_resident_exceeds_active() {
        let m = ModelPair::mixtral_mistral().target;
        let active = m.quant.bytes_for(m.cfg.total_params());
        assert!(m.resident_bytes() > 2 * active);
    }

    #[test]
    fn acceptance_rates_are_probabilities() {
        for p in ModelPair::table1().into_iter().chain(ModelPair::table3()) {
            assert!(p.acceptance_rate > 0.0 && p.acceptance_rate < 1.0);
        }
    }

    #[test]
    fn describe_mentions_quant_format() {
        let d = ModelPair::dolphin_tinyllama().target.describe();
        assert!(d.contains("Q3_K_M"), "{d}");
        assert!(d.contains("Dolphin"), "{d}");
    }

    #[test]
    fn goliath_uses_q2_and_falcon_pairs_share_architecture() {
        assert_eq!(ModelPair::goliath_xwin7b().target.quant, QuantKind::Q2K);
        let f = ModelPair::falcon_7b();
        assert_eq!(f.target.cfg.activation, f.draft.cfg.activation);
    }
}
