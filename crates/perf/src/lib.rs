//! # pi-perf
//!
//! Hardware presets, model presets and the roofline cost model that let the
//! discrete-event simulator reproduce the paper's evaluation at 70B–180B
//! scale without materialising any large model.
//!
//! * [`hardware`] — per-node compute/memory-bandwidth specifications and the
//!   three CPU clusters (A, B, C) plus the GPU testbed from Tables II and IV.
//! * [`models`] — the target/draft model pairs of Tables I and III, with the
//!   quantization formats and the acceptance rates the paper reports.
//! * [`cost`] — the roofline model that converts (model geometry, quant
//!   format, node spec, batch size, context length) into seconds of compute,
//!   used by node behaviors via `NodeCtx::elapse` in simulation runs.
//! * [`memory`] — per-node memory accounting used for the memory-efficiency
//!   figure (Fig. 7a).

pub mod cost;
pub mod hardware;
pub mod memory;
pub mod models;

pub use cost::{CostModel, ModelCost};
pub use hardware::{ClusterSpec, NodeSpec};
pub use memory::InferenceStrategy;
pub use models::{ModelPair, ModelPreset};
