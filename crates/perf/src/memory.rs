//! Per-node memory accounting.
//!
//! The paper measures per-node RSS with `pmap` after clearing the file cache,
//! so only the pages a node actually faults in count: the layers it was
//! assigned, the embedding/head on the head node, the draft model on the
//! node that runs it, plus KV-cache buffers.  This module computes the same
//! quantities analytically for the three inference strategies; Fig. 7a's
//! "speed per GB" series divides measured generation speed by these numbers.

use crate::cost::ModelCost;
use crate::models::ModelPair;
use pi_model::Model;

/// Which inference strategy a deployment uses; determines where the draft
/// model lives and how many nodes the target pipeline spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferenceStrategy {
    /// Pipeline-parallel iterative (non-speculative) inference.
    Iterative,
    /// Pipeline-parallel speculative inference (SpecInfer-style, draft on the
    /// head node).
    Speculative,
    /// PipeInfer: asynchronous pipelined speculation with the draft model and
    /// sampling on the head node (rank 0) and the target pipeline on the
    /// remaining nodes.
    PipeInfer,
}

impl InferenceStrategy {
    /// Display name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            InferenceStrategy::Iterative => "Iterative",
            InferenceStrategy::Speculative => "Speculative",
            InferenceStrategy::PipeInfer => "PipeInfer",
        }
    }

    /// Number of pipeline stages the *target* model is split across when the
    /// cluster has `n_nodes` nodes.  PipeInfer dedicates one node to
    /// speculation (paper §V-B: "one of the nodes is solely dedicated to
    /// speculation, making the target pipeline one node shorter").
    pub fn target_stages(self, n_nodes: usize) -> usize {
        match self {
            InferenceStrategy::Iterative | InferenceStrategy::Speculative => n_nodes,
            InferenceStrategy::PipeInfer => (n_nodes - 1).max(1),
        }
    }

    /// All three strategies in the order the paper's figures list them.
    pub fn all() -> [InferenceStrategy; 3] {
        [
            InferenceStrategy::Iterative,
            InferenceStrategy::Speculative,
            InferenceStrategy::PipeInfer,
        ]
    }
}

/// Fixed KV-cache capacity (tokens) provisioned per node for accounting.
const KV_CACHE_TOKENS: usize = 1024;

/// Per-node memory consumption in bytes for running `pair` with `strategy`
/// across `n_nodes` nodes.  Index 0 is the head node.
pub fn per_node_memory(pair: &ModelPair, strategy: InferenceStrategy, n_nodes: usize) -> Vec<u64> {
    assert!(n_nodes >= 2, "pipeline deployments need at least two nodes");
    let target = ModelCost::new(pair.target.cfg.clone(), pair.target.quant);
    let layer_bytes = (target.layer_weight_bytes() as f64 * pair.target.resident_multiplier) as u64;
    let io_bytes = (target.io_weight_bytes() as f64 * pair.target.resident_multiplier) as u64;
    let kv_per_layer = target.kv_bytes_per_token_per_layer() * KV_CACHE_TOKENS as u64;
    let draft_bytes = pair.draft.resident_bytes();

    let stages = strategy.target_stages(n_nodes);
    let split = Model::split_layers(pair.target.cfg.n_layers, stages);

    let mut mem = vec![0u64; n_nodes];
    // Pipeline ranks: for PipeInfer the head (rank 0) hosts only the draft
    // model and the sampling logic, so the target pipeline occupies ranks
    // 1..N-1; for the baselines it occupies every rank.
    let pipeline_ranks: Vec<usize> = match strategy {
        InferenceStrategy::PipeInfer => (1..n_nodes).collect(),
        _ => (0..n_nodes).collect(),
    };
    for (stage, &rank) in pipeline_ranks.iter().enumerate() {
        let n_layers = split[stage].len() as u64;
        mem[rank] += n_layers * (layer_bytes + kv_per_layer);
    }
    // Head node holds the embedding table and output head.
    mem[0] += io_bytes;
    // Draft model placement.
    match strategy {
        InferenceStrategy::Iterative => {}
        InferenceStrategy::Speculative | InferenceStrategy::PipeInfer => mem[0] += draft_bytes,
    }
    mem
}

/// Mean per-node memory in gigabytes.
pub fn mean_per_node_gb(mem: &[u64]) -> f64 {
    if mem.is_empty() {
        return 0.0;
    }
    mem.iter().map(|&b| b as f64).sum::<f64>() / mem.len() as f64 / 1e9
}

/// The paper's Fig. 7a metric: generation speed divided by mean per-node
/// memory consumption.
pub fn speed_per_gb(speed_tps: f64, mem: &[u64]) -> f64 {
    let gb = mean_per_node_gb(mem);
    if gb <= 0.0 {
        0.0
    } else {
        speed_tps / gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPair;

    #[test]
    fn strategy_names_and_stage_counts() {
        assert_eq!(InferenceStrategy::Iterative.target_stages(8), 8);
        assert_eq!(InferenceStrategy::Speculative.target_stages(8), 8);
        assert_eq!(InferenceStrategy::PipeInfer.target_stages(8), 7);
        assert_eq!(InferenceStrategy::PipeInfer.name(), "PipeInfer");
        assert_eq!(InferenceStrategy::all().len(), 3);
    }

    #[test]
    fn memory_sums_to_roughly_model_plus_draft() {
        let pair = ModelPair::dolphin_tinyllama();
        let mem = per_node_memory(&pair, InferenceStrategy::Speculative, 8);
        let total: u64 = mem.iter().sum();
        let expected = pair.target.resident_bytes() + pair.draft.resident_bytes();
        let ratio = total as f64 / expected as f64;
        assert!(ratio > 0.95 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn iterative_uses_less_memory_than_speculative() {
        let pair = ModelPair::dolphin_tinyllama();
        let iter: u64 = per_node_memory(&pair, InferenceStrategy::Iterative, 8)
            .iter()
            .sum();
        let spec: u64 = per_node_memory(&pair, InferenceStrategy::Speculative, 8)
            .iter()
            .sum();
        assert!(iter < spec);
    }

    #[test]
    fn pipeinfer_and_speculative_totals_match() {
        // The paper observes PipeInfer's memory consumption equals
        // speculative inference's (same weights, different placement).
        let pair = ModelPair::goliath_xwin7b();
        let spec: u64 = per_node_memory(&pair, InferenceStrategy::Speculative, 8)
            .iter()
            .sum();
        let pipe: u64 = per_node_memory(&pair, InferenceStrategy::PipeInfer, 8)
            .iter()
            .sum();
        let ratio = pipe as f64 / spec as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn pipeinfer_head_holds_draft_but_no_target_layers() {
        let pair = ModelPair::dolphin_tinyllama();
        let mem = per_node_memory(&pair, InferenceStrategy::PipeInfer, 4);
        // Rank 0 holds the draft model and the embedding/output head only.
        let draft = pair.draft.resident_bytes();
        assert!(mem[0] >= draft && mem[0] < 3 * draft);
        // The other ranks hold target layers, which for a 70B model dwarf
        // TinyLlama plus the I/O matrices.
        assert!(mem[1] > mem[0]);
        assert!(mem[2] > mem[0]);
    }

    #[test]
    fn per_node_memory_shrinks_as_nodes_increase() {
        let pair = ModelPair::falcon_7b();
        let m4 = per_node_memory(&pair, InferenceStrategy::Iterative, 4);
        let m32 = per_node_memory(&pair, InferenceStrategy::Iterative, 32);
        assert!(mean_per_node_gb(&m32) < mean_per_node_gb(&m4));
        // The largest single node also shrinks (this is what makes 180B
        // feasible on 8 GB nodes in cluster B only at high node counts).
        assert!(m32.iter().max().unwrap() < m4.iter().max().unwrap());
    }

    #[test]
    fn speed_per_gb_is_monotone_in_speed() {
        let pair = ModelPair::dolphin_tinyllama();
        let mem = per_node_memory(&pair, InferenceStrategy::PipeInfer, 8);
        assert!(speed_per_gb(4.0, &mem) > speed_per_gb(2.0, &mem));
        assert_eq!(speed_per_gb(4.0, &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn single_node_pipeline_is_rejected() {
        let pair = ModelPair::dolphin_tinyllama();
        let _ = per_node_memory(&pair, InferenceStrategy::Iterative, 1);
    }
}
