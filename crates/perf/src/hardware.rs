//! Hardware presets reproducing the paper's testbeds.
//!
//! Table II (CPU clusters):
//!
//! | Cluster | Max nodes | CPUs | RAM | Interconnect |
//! |---|---|---|---|---|
//! | A | 8  | 2× Xeon E5-2650 | 128 GB DDR3-1600 | Gigabit Ethernet |
//! | B | 13 | heterogeneous (2nd/4th-gen i5/i7 + 2× Xeon E5-2650) | 8 GB DDR3 | Gigabit Ethernet |
//! | C | 32 | 2× Xeon Gold 6140 | 384 GB DDR4-2666 | InfiniBand EDR 100 Gb/s |
//!
//! Table IV (GPU cluster): 4 nodes, 2× Xeon E5-2640 v3, InfiniBand QDR,
//! one GPU per node (AMD MI60, Tesla P40, Titan V, RTX 3090).
//!
//! Bandwidth and FLOP figures are *effective* values for llama.cpp-class
//! quantized inference kernels (NUMA effects, dequantization overhead and
//! imperfect vectorisation included), not peak hardware numbers — they are
//! calibrated so that single-request decoding speed and the batch size at
//! which evaluation turns compute-bound land in the regime the paper
//! reports.  The shapes of the paper's figures depend on the *ratios*
//! between nodes and between compute and interconnect, which these presets
//! preserve.

use pi_cluster::{LinkSpec, Topology};

/// Compute/memory description of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable name.
    pub name: String,
    /// Sustained memory (or VRAM) bandwidth in bytes per second.
    pub mem_bandwidth_bps: f64,
    /// Sustained compute throughput in FLOP/s for the precision used at
    /// inference time.
    pub compute_flops: f64,
    /// Installed memory in bytes (used for feasibility/memory reporting).
    pub memory_bytes: u64,
}

impl NodeSpec {
    /// Dual-socket Intel Xeon Gold 6140 (cluster C): ≈ 45 GB/s effective
    /// weight-streaming bandwidth, ≈ 1.2 TFLOP/s effective quantized-kernel
    /// throughput.
    pub fn xeon_gold_6140_dual() -> Self {
        Self {
            name: "2x Xeon Gold 6140".into(),
            mem_bandwidth_bps: 45e9,
            compute_flops: 1.2e12,
            memory_bytes: 384 * 1024 * 1024 * 1024,
        }
    }

    /// Dual-socket Intel Xeon E5-2650 (cluster A): ≈ 25 GB/s effective
    /// streaming bandwidth, ≈ 0.35 TFLOP/s effective throughput.
    pub fn xeon_e5_2650_dual() -> Self {
        Self {
            name: "2x Xeon E5-2650".into(),
            mem_bandwidth_bps: 25e9,
            compute_flops: 0.35e12,
            memory_bytes: 128 * 1024 * 1024 * 1024,
        }
    }

    /// Dell Optiplex with a 2nd-generation Core i5 and dual-channel DDR3:
    /// ≈ 10 GB/s effective, ≈ 60 GFLOP/s effective.
    pub fn optiplex_i5_gen2() -> Self {
        Self {
            name: "Optiplex i5-2400".into(),
            mem_bandwidth_bps: 10e9,
            compute_flops: 60e9,
            memory_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Dell Optiplex with a 4th-generation Core i7 and dual-channel DDR3:
    /// ≈ 13 GB/s effective, ≈ 130 GFLOP/s effective.
    pub fn optiplex_i7_gen4() -> Self {
        Self {
            name: "Optiplex i7-4770".into(),
            mem_bandwidth_bps: 13e9,
            compute_flops: 130e9,
            memory_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// AMD Instinct MI60: ≈ 700 GB/s effective HBM2 bandwidth, ≈ 10 TFLOP/s
    /// effective.
    pub fn gpu_mi60() -> Self {
        Self {
            name: "AMD Instinct MI60".into(),
            mem_bandwidth_bps: 700e9,
            compute_flops: 10e12,
            memory_bytes: 32 * 1024 * 1024 * 1024,
        }
    }

    /// NVIDIA Tesla P40: ≈ 250 GB/s effective GDDR5 bandwidth, ≈ 8 TFLOP/s
    /// effective.
    pub fn gpu_tesla_p40() -> Self {
        Self {
            name: "NVIDIA Tesla P40".into(),
            mem_bandwidth_bps: 250e9,
            compute_flops: 8e12,
            memory_bytes: 24 * 1024 * 1024 * 1024,
        }
    }

    /// NVIDIA Titan V: ≈ 450 GB/s effective HBM2 bandwidth, ≈ 10 TFLOP/s
    /// effective.
    pub fn gpu_titan_v() -> Self {
        Self {
            name: "NVIDIA Titan V".into(),
            mem_bandwidth_bps: 450e9,
            compute_flops: 10e12,
            memory_bytes: 12 * 1024 * 1024 * 1024,
        }
    }

    /// NVIDIA RTX 3090: ≈ 650 GB/s effective GDDR6X bandwidth, ≈ 20 TFLOP/s
    /// effective.
    pub fn gpu_rtx_3090() -> Self {
        Self {
            name: "NVIDIA RTX 3090".into(),
            mem_bandwidth_bps: 650e9,
            compute_flops: 20e12,
            memory_bytes: 24 * 1024 * 1024 * 1024,
        }
    }
}

/// A cluster: a list of node specifications and an interconnect.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Cluster name ("A", "B", "C", "GPU").
    pub name: String,
    /// Node specifications in rank order (rank 0 first).
    pub nodes: Vec<NodeSpec>,
    /// Interconnect link spec (uniform switch).
    pub interconnect: LinkSpec,
}

impl ClusterSpec {
    /// Cluster A: up to 8 dual-Xeon E5-2650 nodes on Gigabit Ethernet.
    pub fn cluster_a(n_nodes: usize) -> Self {
        assert!((1..=8).contains(&n_nodes), "cluster A has at most 8 nodes");
        Self {
            name: "A".into(),
            nodes: vec![NodeSpec::xeon_e5_2650_dual(); n_nodes],
            interconnect: LinkSpec::gigabit_ethernet(),
        }
    }

    /// Cluster B: 13 heterogeneous nodes on Gigabit Ethernet — 8 Xeon E5
    /// nodes plus 5 old Dell Optiplexes (three 2nd-gen i5, two 4th-gen i7).
    /// Requesting fewer nodes keeps the fastest nodes first, matching the
    /// paper's "adding additional nodes beyond the 8 Xeon E5 nodes"
    /// narrative.
    pub fn cluster_b(n_nodes: usize) -> Self {
        assert!(
            (1..=13).contains(&n_nodes),
            "cluster B has at most 13 nodes"
        );
        let mut nodes = vec![NodeSpec::xeon_e5_2650_dual(); 8];
        nodes.push(NodeSpec::optiplex_i7_gen4());
        nodes.push(NodeSpec::optiplex_i7_gen4());
        nodes.push(NodeSpec::optiplex_i5_gen2());
        nodes.push(NodeSpec::optiplex_i5_gen2());
        nodes.push(NodeSpec::optiplex_i5_gen2());
        nodes.truncate(n_nodes);
        Self {
            name: "B".into(),
            nodes,
            interconnect: LinkSpec::gigabit_ethernet(),
        }
    }

    /// Cluster C: up to 32 dual-Xeon Gold 6140 nodes on InfiniBand EDR.
    pub fn cluster_c(n_nodes: usize) -> Self {
        assert!(
            (1..=32).contains(&n_nodes),
            "cluster C has at most 32 nodes"
        );
        Self {
            name: "C".into(),
            nodes: vec![NodeSpec::xeon_gold_6140_dual(); n_nodes],
            interconnect: LinkSpec::infiniband_edr(),
        }
    }

    /// The 4-node GPU cluster of Table IV (one GPU per node, InfiniBand QDR).
    pub fn gpu_cluster() -> Self {
        Self {
            name: "GPU".into(),
            nodes: vec![
                NodeSpec::gpu_rtx_3090(),
                NodeSpec::gpu_mi60(),
                NodeSpec::gpu_titan_v(),
                NodeSpec::gpu_tesla_p40(),
            ],
            interconnect: LinkSpec::infiniband_qdr(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node spec of rank `r`.
    pub fn node(&self, r: usize) -> &NodeSpec {
        &self.nodes[r]
    }

    /// Builds the interconnect topology for the simulator.
    pub fn topology(&self) -> Topology {
        Topology::uniform(self.n_nodes(), self.interconnect)
    }

    /// Aggregate memory bandwidth of all nodes (a rough capability measure
    /// used in reports).
    pub fn total_mem_bandwidth(&self) -> f64 {
        self.nodes.iter().map(|n| n.mem_bandwidth_bps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_sizes_match_table2() {
        assert_eq!(ClusterSpec::cluster_a(8).n_nodes(), 8);
        assert_eq!(ClusterSpec::cluster_b(13).n_nodes(), 13);
        assert_eq!(ClusterSpec::cluster_c(32).n_nodes(), 32);
        assert_eq!(ClusterSpec::gpu_cluster().n_nodes(), 4);
    }

    #[test]
    #[should_panic]
    fn cluster_a_rejects_too_many_nodes() {
        let _ = ClusterSpec::cluster_a(9);
    }

    #[test]
    fn cluster_c_nodes_are_faster_than_cluster_a() {
        let a = ClusterSpec::cluster_a(4);
        let c = ClusterSpec::cluster_c(4);
        assert!(c.node(0).mem_bandwidth_bps > 1.5 * a.node(0).mem_bandwidth_bps);
        assert!(c.node(0).compute_flops > a.node(0).compute_flops);
    }

    #[test]
    fn cluster_b_is_heterogeneous_with_slow_tail() {
        let b = ClusterSpec::cluster_b(13);
        let first = b.node(0).mem_bandwidth_bps;
        let last = b.node(12).mem_bandwidth_bps;
        assert!(
            first > 2.0 * last,
            "Optiplexes must be much slower than Xeons"
        );
        // First 8 are homogeneous Xeons.
        assert!(b.nodes[..8].iter().all(|n| n.name.contains("E5-2650")));
    }

    #[test]
    fn cluster_b_truncation_keeps_xeons_first() {
        let b = ClusterSpec::cluster_b(8);
        assert!(b.nodes.iter().all(|n| n.name.contains("E5-2650")));
    }

    #[test]
    fn interconnects_match_table2() {
        assert_eq!(
            ClusterSpec::cluster_a(2).interconnect,
            LinkSpec::gigabit_ethernet()
        );
        assert_eq!(
            ClusterSpec::cluster_b(2).interconnect,
            LinkSpec::gigabit_ethernet()
        );
        assert_eq!(
            ClusterSpec::cluster_c(2).interconnect,
            LinkSpec::infiniband_edr()
        );
        assert_eq!(
            ClusterSpec::gpu_cluster().interconnect,
            LinkSpec::infiniband_qdr()
        );
    }

    #[test]
    fn gpu_nodes_have_high_bandwidth() {
        let g = ClusterSpec::gpu_cluster();
        assert!(g.nodes.iter().all(|n| n.mem_bandwidth_bps > 200e9));
        assert!(g.total_mem_bandwidth() > 1.5e12);
    }

    #[test]
    fn topology_has_matching_rank_count() {
        let spec = ClusterSpec::cluster_c(15);
        assert_eq!(spec.topology().n_ranks(), 15);
    }
}
