//! Roofline cost model for transformer inference on a node.
//!
//! The paper's performance story is a bandwidth story: small-batch decoding
//! streams every weight of the assigned layers from memory for each
//! evaluation, so evaluation time is `weight_bytes / memory_bandwidth` until
//! the batch is large enough for FLOPs to dominate.  Speculative batching
//! wins exactly because several tokens share one weight stream; PipeInfer's
//! micro-batches trade a little of that sharing for latency and cancelability
//! (§IV-B1).  The model here is the standard roofline:
//!
//! ```text
//! t_layer(batch) = max( weight_bytes/BW + kv_bytes(context)/BW ,
//!                       batch × flops_per_token / FLOPS )
//! ```
//!
//! summed over the layers assigned to the node, plus an analogous term for
//! the embedding/output head on the head node.

use crate::hardware::NodeSpec;
use pi_model::ModelConfig;
use pi_tensor::QuantKind;

/// Pre-computed per-layer cost figures for a (model, quantization) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCost {
    /// Model geometry.
    pub cfg: ModelConfig,
    /// Weight quantization format.
    pub quant: QuantKind,
    layer_weight_bytes: u64,
    io_weight_bytes: u64,
    kv_bytes_per_token_per_layer: u64,
}

impl ModelCost {
    /// Builds the cost figures for a model stored in `quant` format.
    pub fn new(cfg: ModelConfig, quant: QuantKind) -> Self {
        let layer_weight_bytes = quant.bytes_for(cfg.layer_params());
        let io_weight_bytes = quant.bytes_for(cfg.io_params());
        // K and V, f16 cache entries (llama.cpp default).
        let kv_bytes_per_token_per_layer = (cfg.kv_dim() * 2 * 2) as u64;
        Self {
            cfg,
            quant,
            layer_weight_bytes,
            io_weight_bytes,
            kv_bytes_per_token_per_layer,
        }
    }

    /// Bytes of weights in one decoder layer.
    pub fn layer_weight_bytes(&self) -> u64 {
        self.layer_weight_bytes
    }

    /// Bytes of the embedding table, output head and final norm.
    pub fn io_weight_bytes(&self) -> u64 {
        self.io_weight_bytes
    }

    /// Total weight bytes of the model.
    pub fn total_weight_bytes(&self) -> u64 {
        self.io_weight_bytes + self.layer_weight_bytes * self.cfg.n_layers as u64
    }

    /// Bytes of KV-cache entries per token per layer.
    pub fn kv_bytes_per_token_per_layer(&self) -> u64 {
        self.kv_bytes_per_token_per_layer
    }

    /// Size in bytes of the activation tensor for `batch_tokens` tokens (the
    /// payload shipped between pipeline stages).
    pub fn activation_bytes(&self, batch_tokens: usize) -> u64 {
        self.cfg.activation_bytes_per_token() * batch_tokens as u64
    }
}

/// Cost model for a specific node.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    node: NodeSpec,
}

impl CostModel {
    /// Creates a cost model for a node.
    pub fn new(node: NodeSpec) -> Self {
        Self { node }
    }

    /// The node this model describes.
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// Seconds to evaluate `n_layers` decoder layers of `model` over a batch
    /// of `batch_tokens` tokens with `context_len` tokens already in the KV
    /// cache.
    pub fn layers_time(
        &self,
        model: &ModelCost,
        n_layers: usize,
        batch_tokens: usize,
        context_len: usize,
    ) -> f64 {
        if n_layers == 0 || batch_tokens == 0 {
            return 0.0;
        }
        let bw = self.node.mem_bandwidth_bps;
        let flops = self.node.compute_flops;
        let weight_stream = (n_layers as f64 * model.layer_weight_bytes as f64) / bw;
        let kv_stream = (n_layers as f64
            * batch_tokens as f64
            * context_len as f64
            * model.kv_bytes_per_token_per_layer as f64)
            / bw;
        let compute =
            (n_layers as f64 * batch_tokens as f64 * model.cfg.layer_flops_per_token() as f64)
                / flops;
        (weight_stream + kv_stream).max(compute)
    }

    /// Seconds to evaluate `n_layers` decoder layers over a *fused cohort*
    /// batch: `groups` holds one `(batch_tokens, context_len)` pair per
    /// fused request.  The weight stream is paid **once** for the whole
    /// cohort — the entire point of iteration-level cross-request batching
    /// on a bandwidth-bound node — while the KV stream and the FLOPs are
    /// the sums of the per-request terms (each request's rows attend only
    /// over that request's own context).  With a single group this is
    /// exactly [`CostModel::layers_time`].
    pub fn layers_time_grouped(
        &self,
        model: &ModelCost,
        n_layers: usize,
        groups: &[(usize, usize)],
    ) -> f64 {
        let rows: usize = groups.iter().map(|(b, _)| b).sum();
        if n_layers == 0 || rows == 0 {
            return 0.0;
        }
        let bw = self.node.mem_bandwidth_bps;
        let flops = self.node.compute_flops;
        let weight_stream = (n_layers as f64 * model.layer_weight_bytes as f64) / bw;
        let kv_stream: f64 = groups
            .iter()
            .map(|&(batch_tokens, context_len)| {
                (n_layers as f64
                    * batch_tokens as f64
                    * context_len as f64
                    * model.kv_bytes_per_token_per_layer as f64)
                    / bw
            })
            .sum();
        let compute =
            (n_layers as f64 * rows as f64 * model.cfg.layer_flops_per_token() as f64) / flops;
        (weight_stream + kv_stream).max(compute)
    }

    /// Seconds to run the embedding lookup and the output head for
    /// `batch_tokens` tokens (head-node work).
    pub fn io_time(&self, model: &ModelCost, batch_tokens: usize) -> f64 {
        if batch_tokens == 0 {
            return 0.0;
        }
        let bw = self.node.mem_bandwidth_bps;
        let flops = self.node.compute_flops;
        let stream = model.io_weight_bytes as f64 / bw;
        let compute = batch_tokens as f64 * model.cfg.io_flops_per_token() as f64 / flops;
        stream.max(compute)
    }

    /// Seconds to run the *entire* model (all layers plus head) for a batch —
    /// how the dedicated speculative node evaluates its draft model.
    pub fn full_model_time(
        &self,
        model: &ModelCost,
        batch_tokens: usize,
        context_len: usize,
    ) -> f64 {
        self.layers_time(model, model.cfg.n_layers, batch_tokens, context_len)
            + self.io_time(model, batch_tokens)
    }

    /// Seconds of sampling / verification bookkeeping on the head node per
    /// logit row processed.  Small but non-zero; keeps zero-compute callbacks
    /// from collapsing to zero-length events in the simulator.
    pub fn sampling_time(&self, model: &ModelCost, rows: usize) -> f64 {
        // Scanning one vocab-sized f32 logit row from memory.
        let bytes = (model.cfg.vocab_size * 4 * rows) as f64;
        bytes / self.node.mem_bandwidth_bps + 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::NodeSpec;

    fn dolphin() -> ModelCost {
        ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K)
    }

    fn xeon_gold() -> CostModel {
        CostModel::new(NodeSpec::xeon_gold_6140_dual())
    }

    #[test]
    fn seventy_b_q3_weight_footprint() {
        let m = dolphin();
        let gb = m.total_weight_bytes() as f64 / 1e9;
        assert!(gb > 25.0 && gb < 35.0, "got {gb} GB");
    }

    #[test]
    fn single_token_layer_time_is_bandwidth_bound() {
        let m = dolphin();
        let c = xeon_gold();
        let t = c.layers_time(&m, 1, 1, 128);
        // One layer ≈ 360 MB at 45 GB/s effective ≈ 8 ms.
        assert!(t > 2e-3 && t < 20e-3, "t = {t}");
        // Bandwidth bound: doubling batch size (1→2) changes time little.
        let t2 = c.layers_time(&m, 1, 2, 128);
        assert!(t2 < 1.7 * t, "t={t} t2={t2}");
    }

    #[test]
    fn large_batches_become_compute_bound() {
        let m = dolphin();
        let c = xeon_gold();
        let t1 = c.layers_time(&m, 1, 1, 128);
        let t64 = c.layers_time(&m, 1, 64, 128);
        // 64 tokens must cost clearly more than 1 token but far less than 64×.
        assert!(t64 > 4.0 * t1);
        assert!(t64 < 40.0 * t1);
    }

    #[test]
    fn time_scales_linearly_with_layer_count() {
        let m = dolphin();
        let c = xeon_gold();
        let t10 = c.layers_time(&m, 10, 1, 0);
        let t20 = c.layers_time(&m, 20, 1, 0);
        assert!((t20 / t10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slower_node_takes_longer() {
        let m = dolphin();
        let fast = xeon_gold();
        let slow = CostModel::new(NodeSpec::optiplex_i5_gen2());
        assert!(slow.layers_time(&m, 4, 1, 128) > 3.0 * fast.layers_time(&m, 4, 1, 128));
    }

    #[test]
    fn draft_model_is_much_cheaper_than_target() {
        let target = dolphin();
        let draft = ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K);
        let c = xeon_gold();
        let t_target = c.layers_time(&target, target.cfg.n_layers, 1, 128);
        let t_draft = c.full_model_time(&draft, 1, 128);
        assert!(
            t_target > 10.0 * t_draft,
            "target {t_target}, draft {t_draft}"
        );
    }

    #[test]
    fn context_length_increases_cost() {
        let m = dolphin();
        let c = xeon_gold();
        assert!(c.layers_time(&m, 80, 1, 4096) > c.layers_time(&m, 80, 1, 0));
    }

    #[test]
    fn gpu_is_faster_than_cpu() {
        let m = dolphin();
        let cpu = xeon_gold();
        let gpu = CostModel::new(NodeSpec::gpu_rtx_3090());
        assert!(cpu.layers_time(&m, 20, 1, 128) > 3.0 * gpu.layers_time(&m, 20, 1, 128));
    }

    #[test]
    fn zero_work_costs_nothing() {
        let m = dolphin();
        let c = xeon_gold();
        assert_eq!(c.layers_time(&m, 0, 1, 128), 0.0);
        assert_eq!(c.layers_time(&m, 5, 0, 128), 0.0);
        assert_eq!(c.io_time(&m, 0), 0.0);
    }

    #[test]
    fn grouped_time_amortizes_the_weight_stream() {
        let m = dolphin();
        let c = xeon_gold();
        // One group degenerates to the plain per-request roofline.
        assert_eq!(
            c.layers_time_grouped(&m, 8, &[(2, 128)]),
            c.layers_time(&m, 8, 2, 128)
        );
        assert_eq!(c.layers_time_grouped(&m, 8, &[]), 0.0);
        assert_eq!(c.layers_time_grouped(&m, 0, &[(1, 0)]), 0.0);
        // A fused cohort of 8 single-token requests streams the weights
        // once; 8 solo evaluations stream them 8 times.  In the
        // bandwidth-bound regime the fused step must cost far less than
        // the sum of the solo steps, and no less than one of them.
        let groups: Vec<(usize, usize)> = (0..8).map(|i| (1usize, 100 + i)).collect();
        let fused = c.layers_time_grouped(&m, 8, &groups);
        let solo_sum: f64 = groups
            .iter()
            .map(|&(b, ctx)| c.layers_time(&m, 8, b, ctx))
            .sum();
        let solo_max = groups
            .iter()
            .map(|&(b, ctx)| c.layers_time(&m, 8, b, ctx))
            .fold(0.0, f64::max);
        assert!(fused < 0.5 * solo_sum, "fused {fused} vs sum {solo_sum}");
        assert!(fused >= solo_max, "fused {fused} vs max {solo_max}");
    }

    #[test]
    fn sampling_time_is_small_but_positive() {
        let m = dolphin();
        let c = xeon_gold();
        let t = c.sampling_time(&m, 4);
        assert!(t > 0.0 && t < 1e-3);
    }

    #[test]
    fn activation_bytes_scale_with_batch() {
        let m = dolphin();
        assert_eq!(m.activation_bytes(4), 4 * 8192 * 4);
    }
}
