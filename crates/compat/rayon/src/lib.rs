//! Offline stand-in for the `rayon` crate.
//!
//! Provides the one parallel-iterator shape the workspace uses —
//! `slice.par_chunks_mut(n).enumerate().for_each(f)` — executed on a
//! **persistent worker pool** ([`pool`]) instead of rayon's work-stealing
//! runtime.  The pool is created once per process, its threads are long-lived
//! and shared by every parallel call, and work items are claimed from a
//! chunked queue by an atomic counter, which matches the matmul
//! row/column-block partitioning use case (uniform cost per item).
//!
//! Thread count is `PIPEINFER_THREADS` when set (re-read on every call, so
//! `PIPEINFER_THREADS=1` forces fully serial in-caller execution), otherwise
//! the machine's available parallelism.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::slice::ParallelSliceMut;
}

pub mod pool {
    //! The process-wide persistent worker pool.
    //!
    //! Design (llama.cpp-style compute pool, simplified):
    //!
    //! * One [`WorkerPool`] per process, lazily created through a `OnceLock`.
    //!   Worker threads are spawned on demand up to the requested parallelism
    //!   and never exit; repeated parallel calls reuse them.
    //! * A parallel call publishes one `Job` — a borrowed `Fn(usize)` task
    //!   plus an atomic claim counter — and enqueues one "come help" ticket
    //!   per helper thread.  Workers (and the calling thread, which always
    //!   participates) claim item indices with `fetch_add` until the job is
    //!   exhausted, so several jobs from concurrent callers can be in flight
    //!   at once without serialising each other.
    //! * A panic inside a work item is caught on the worker, recorded on the
    //!   job, and re-raised on the *calling* thread once every item has run;
    //!   pool threads never die, so a panicking kernel cannot leak or grow
    //!   threads.
    //!
    //! Safety: a job stores a raw pointer to the caller's closure.  This is
    //! sound because the caller blocks until the per-job completion count
    //! reaches `n_items`, and workers only dereference the closure after
    //! successfully claiming an in-range item — which can no longer happen
    //! once every item is done.

    use std::collections::VecDeque;
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// What a work item panicked with, carried back to the calling thread so
    /// the original message/location is preserved on re-raise.
    type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// Environment variable overriding the pool's parallelism.
    pub const THREADS_ENV: &str = "PIPEINFER_THREADS";

    /// Upper bound on pool threads regardless of the override (a backstop
    /// against `PIPEINFER_THREADS=100000`, not a tuning knob).
    const MAX_THREADS: usize = 256;

    /// Total worker threads ever spawned by this process (test observability).
    static SPAWNED: AtomicUsize = AtomicUsize::new(0);

    struct Job {
        /// Borrowed task; valid until the caller's `run` returns (see module
        /// safety note).
        task: *const (dyn Fn(usize) + Sync),
        n_items: usize,
        /// Next item index to claim.
        next: AtomicUsize,
        /// Items fully executed.
        done: AtomicUsize,
        /// First panic payload observed in a work item, if any.
        panic: Mutex<Option<PanicPayload>>,
        finished: Mutex<bool>,
        finished_cv: Condvar,
    }

    // The raw task pointer is only dereferenced while the caller keeps the
    // closure alive (see module docs); the rest of the struct is atomics and
    // locks.
    unsafe impl Send for Job {}
    unsafe impl Sync for Job {}

    impl Job {
        /// Claims and runs items until the job is exhausted.
        fn work(&self) {
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n_items {
                    return;
                }
                let task = unsafe { &*self.task };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
                if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n_items {
                    *self.finished.lock().unwrap() = true;
                    self.finished_cv.notify_all();
                }
            }
        }

        fn wait(&self) {
            let mut fin = self.finished.lock().unwrap();
            while !*fin {
                fin = self.finished_cv.wait(fin).unwrap();
            }
        }
    }

    struct PoolState {
        queue: VecDeque<Arc<Job>>,
        /// Worker threads spawned so far.
        workers: usize,
    }

    struct Shared {
        state: Mutex<PoolState>,
        work_cv: Condvar,
    }

    /// The persistent worker pool.
    pub struct WorkerPool {
        shared: Arc<Shared>,
    }

    static POOL: OnceLock<WorkerPool> = OnceLock::new();

    /// The process-wide pool (created on first use).
    pub fn global() -> &'static WorkerPool {
        POOL.get_or_init(|| WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    workers: 0,
                }),
                work_cv: Condvar::new(),
            }),
        })
    }

    fn env_threads() -> Option<usize> {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(|n| n.min(MAX_THREADS))
    }

    fn default_threads() -> usize {
        // `available_parallelism` is *not* cheap on Linux: it re-reads the
        // cgroup CPU quota files on every call (~10µs in a container), which
        // a per-dispatch caller would pay on every matmul.  The machine's
        // parallelism cannot change under us, so resolve it once; only the
        // `PIPEINFER_THREADS` override stays dynamic.
        static DEFAULT: OnceLock<usize> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Parallelism a call with `n_items` work items will use right now:
    /// `PIPEINFER_THREADS` if set, else available parallelism, capped at
    /// `n_items`.
    pub fn effective_threads(n_items: usize) -> usize {
        env_threads()
            .unwrap_or_else(default_threads)
            .min(n_items)
            .max(1)
    }

    /// Configured parallelism (as [`effective_threads`] with unbounded work).
    pub fn configured_threads() -> usize {
        env_threads().unwrap_or_else(default_threads)
    }

    /// Minimum multiply-adds (or comparable work units) a parallel chunk
    /// should carry: below this, the claim/dispatch overhead per chunk is no
    /// longer negligible against the chunk's own compute.
    const MIN_CHUNK_WORK: usize = 8 * 1024;

    /// Chunk size for splitting `n_items` uniform work items (each costing
    /// `work_per_item` multiply-adds) across the pool.
    ///
    /// Targets ~4 chunks per configured thread so the claim counter can
    /// load-balance (the last chunk finishing late only idles a thread for
    /// 1/4 of its share), but never makes chunks smaller than
    /// `MIN_CHUNK_WORK` multiply-adds.  This replaces the old fixed
    /// `threshold / k` sizing, which produced the same chunk count at every
    /// thread count — 8 chunks for a 512×512 GEMV regardless of whether 1 or
    /// 8 threads were available.
    pub fn chunk_size(n_items: usize, work_per_item: usize) -> usize {
        if n_items == 0 {
            return 1;
        }
        let target_chunks = (configured_threads() * 4).max(1);
        let by_balance = n_items.div_ceil(target_chunks);
        let by_work = MIN_CHUNK_WORK.div_ceil(work_per_item.max(1));
        by_balance.max(by_work).clamp(1, n_items)
    }

    /// Total worker threads this process has ever spawned.  The pool only
    /// grows when the requested parallelism exceeds every previous request,
    /// so under a fixed configuration this is constant after the first
    /// parallel call.
    pub fn spawned_workers() -> usize {
        SPAWNED.load(Ordering::Relaxed)
    }

    fn worker_loop(shared: Arc<Shared>) {
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    st = shared.work_cv.wait(st).unwrap();
                }
            };
            job.work();
        }
    }

    impl WorkerPool {
        fn ensure_workers(&self, target: usize) {
            let mut st = self.shared.state.lock().unwrap();
            while st.workers < target {
                let shared = self.shared.clone();
                std::thread::Builder::new()
                    .name(format!("pipeinfer-pool-{}", st.workers))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker");
                st.workers += 1;
                SPAWNED.fetch_add(1, Ordering::Relaxed);
            }
        }

        /// Runs `task(i)` for every `i` in `0..n_items`, blocking until all
        /// items completed.  With an effective parallelism of 1 the items run
        /// inline on the calling thread and the pool is never touched.
        ///
        /// Every item executes even if an earlier one panics (callers such as
        /// `parallel_for_each` rely on each index being visited exactly once
        /// for drop correctness); the first panic's original payload is
        /// re-raised on the calling thread after the last item ran, in serial
        /// and parallel mode alike.
        pub fn run(&self, n_items: usize, task: &(dyn Fn(usize) + Sync)) {
            if n_items == 0 {
                return;
            }
            let threads = effective_threads(n_items);
            if threads <= 1 {
                let mut first_panic = None;
                for i in 0..n_items {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                        first_panic.get_or_insert(payload);
                    }
                }
                if let Some(payload) = first_panic {
                    resume_unwind(payload);
                }
                return;
            }
            self.ensure_workers(threads - 1);
            // Erase the borrow's lifetime; `run` blocks until every item has
            // executed, so the pointer never outlives the closure (see the
            // module safety note).
            let task: *const (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task as *const _)
            };
            let job = Arc::new(Job {
                task,
                n_items,
                next: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                panic: Mutex::new(None),
                finished: Mutex::new(false),
                finished_cv: Condvar::new(),
            });
            {
                let mut st = self.shared.state.lock().unwrap();
                for _ in 0..threads - 1 {
                    st.queue.push_back(job.clone());
                }
            }
            self.shared.work_cv.notify_all();
            job.work();
            job.wait();
            let payload = job.panic.lock().unwrap().take();
            if let Some(payload) = payload {
                resume_unwind(payload);
            }
        }
    }
}

/// Runs `f` over every item of `items` on the persistent pool, claim-based.
///
/// Items are moved out of the vector exactly once each (workers claim indices
/// atomically), so `f` receives owned items just like an iterator `for_each`.
fn parallel_for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let mut items = items;
    let base = items.as_mut_ptr();
    // Logically move the items out of the Vec: the buffer stays allocated and
    // initialised, but the Vec will no longer drop its contents.  Every index
    // in 0..n is claimed exactly once below, so each item is consumed exactly
    // once (dropped inside `f`, or during `f`'s unwind).
    unsafe { items.set_len(0) };
    struct Base<I>(*mut I);
    unsafe impl<I: Send> Sync for Base<I> {}
    impl<I> Base<I> {
        /// Moves item `i` out of the buffer; each index may be read once.
        unsafe fn take(&self, i: usize) -> I {
            std::ptr::read(self.0.add(i))
        }
    }
    let base = Base(base);
    let task = move |i: usize| {
        let item = unsafe { base.take(i) };
        f(item);
    };
    pool::global().run(n, &task);
}

pub mod slice {
    //! Parallel operations on slices.

    use super::parallel_for_each;

    /// Extension trait adding `par_chunks_mut` to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into non-overlapping mutable chunks of
        /// `chunk_size` elements (the last chunk may be shorter) that can be
        /// processed in parallel.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// Parallel iterator over mutable chunks of a slice.
    pub struct ParChunksMut<'a, T: Send> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs every chunk with its index.
        pub fn enumerate(self) -> ParEnumerate<'a, T> {
            ParEnumerate {
                chunks: self.chunks.into_iter().enumerate().collect(),
            }
        }

        /// Applies `f` to every chunk, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            parallel_for_each(self.chunks, f);
        }
    }

    /// Enumerated parallel iterator over mutable chunks.
    pub struct ParEnumerate<'a, T: Send> {
        chunks: Vec<(usize, &'a mut [T])>,
    }

    impl<'a, T: Send> ParEnumerate<'a, T> {
        /// Applies `f` to every `(index, chunk)` pair, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            parallel_for_each(self.chunks, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Serialises tests that mutate `PIPEINFER_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Grows the shared global pool to the largest size any test in this
    /// binary can request (other tests run concurrently with the env var
    /// unset, so they request `available_parallelism`).  Called before a
    /// test records `spawned_workers()`, it guarantees no concurrent test
    /// can grow the pool afterwards and invalidate the observation.
    fn saturate_pool() {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4);
        std::env::set_var(super::pool::THREADS_ENV, max.to_string());
        let mut data = vec![0u8; max * 4];
        data.par_chunks_mut(1).for_each(|c| c[0] = 1);
    }

    fn with_threads<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var_os(super::pool::THREADS_ENV);
        saturate_pool();
        match n {
            Some(n) => std::env::set_var(super::pool::THREADS_ENV, n.to_string()),
            None => std::env::remove_var(super::pool::THREADS_ENV),
        }
        let out = f();
        match prev {
            Some(v) => std::env::set_var(super::pool::THREADS_ENV, v),
            None => std::env::remove_var(super::pool::THREADS_ENV),
        }
        out
    }

    #[test]
    fn enumerate_for_each_touches_every_chunk_once() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, pos / 10 + 1);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = [1.0f32; 8];
        data.par_chunks_mut(100).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn closures_can_capture_shared_state() {
        let src: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 64];
        let bias = 1.5f32;
        dst.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = src[i * 7 + j] + bias;
            }
        });
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.5);
        }
    }

    #[test]
    fn threads_env_one_forces_serial() {
        with_threads(Some(1), || {
            let caller = std::thread::current().id();
            let seen = Mutex::new(HashSet::new());
            let mut data = vec![0u32; 256];
            data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
                seen.lock().unwrap().insert(std::thread::current().id());
                for v in chunk.iter_mut() {
                    *v = i as u32;
                }
            });
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 1, "serial mode must not fan out");
            assert!(seen.contains(&caller), "work must run on the caller");
            for (pos, v) in data.iter().enumerate() {
                assert_eq!(*v, (pos / 4) as u32);
            }
        });
    }

    #[test]
    fn pool_survives_panicking_work_item() {
        with_threads(Some(4), || {
            // Warm the pool so thread-growth observations are stable.
            let mut warm = [0u8; 64];
            warm.par_chunks_mut(1).for_each(|c| c[0] = 1);
            let spawned_before = super::pool::spawned_workers();

            let caught = std::panic::catch_unwind(|| {
                let mut data = [0u8; 64];
                data.par_chunks_mut(1).enumerate().for_each(|(i, _chunk)| {
                    if i == 13 {
                        panic!("injected work-item panic");
                    }
                });
            });
            let payload = caught.expect_err("the panic must surface on the caller");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .expect("original payload must be preserved");
            assert_eq!(message, "injected work-item panic");

            // The pool keeps working afterwards, with the same threads.
            let mut data = vec![0u32; 128];
            data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
            for (pos, v) in data.iter().enumerate() {
                assert_eq!(*v, (pos / 2) as u32 + 1);
            }
            assert_eq!(
                super::pool::spawned_workers(),
                spawned_before,
                "a panicking item must not cost (or leak) threads"
            );
        });
    }

    #[test]
    fn repeated_calls_do_not_grow_thread_count() {
        with_threads(Some(4), || {
            let mut data = vec![0u64; 512];
            data.par_chunks_mut(8)
                .for_each(|c| c.iter_mut().for_each(|v| *v += 1));
            let spawned_after_first = super::pool::spawned_workers();
            assert!(spawned_after_first >= 3, "a 4-thread call spawns 3 helpers");
            for _ in 0..50 {
                data.par_chunks_mut(8)
                    .for_each(|c| c.iter_mut().for_each(|v| *v += 1));
            }
            assert_eq!(
                super::pool::spawned_workers(),
                spawned_after_first,
                "long-lived workers must be reused, not respawned"
            );
            assert!(data.iter().all(|&v| v == 51));
        });
    }

    #[test]
    fn chunk_size_scales_with_threads_and_respects_work_floor() {
        with_threads(Some(8), || {
            // 512 items of k=512 muladds each: balance wins — 4 chunks per
            // thread → 32 chunks of 16 items.
            assert_eq!(super::pool::chunk_size(512, 512), 16);
            // Tiny per-item work: the 8K-muladd floor wins over balance
            // (8192/4 = 2048 items per chunk, clamped to the item count).
            assert_eq!(super::pool::chunk_size(512, 4), 512);
            // Never exceeds the item count.
            assert_eq!(super::pool::chunk_size(3, 1), 3);
            assert_eq!(super::pool::chunk_size(0, 64), 1);
        });
        with_threads(Some(1), || {
            // One thread: 4 chunks of 128 for the same 512×512 shape.
            assert_eq!(super::pool::chunk_size(512, 512), 128);
        });
    }

    #[test]
    fn effective_threads_is_capped_by_items() {
        with_threads(Some(4), || {
            assert_eq!(super::pool::effective_threads(1), 1);
            assert_eq!(super::pool::effective_threads(2), 2);
            assert_eq!(super::pool::effective_threads(1000), 4);
            assert_eq!(super::pool::configured_threads(), 4);
        });
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        with_threads(Some(3), || {
            std::thread::scope(|s| {
                for t in 0..4 {
                    s.spawn(move || {
                        let mut data = vec![0usize; 200];
                        data.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
                            for v in chunk.iter_mut() {
                                *v = i * 10 + t;
                            }
                        });
                        for (pos, v) in data.iter().enumerate() {
                            assert_eq!(*v, (pos / 5) * 10 + t);
                        }
                    });
                }
            });
        });
    }
}
