//! Offline stand-in for the `rayon` crate.
//!
//! Provides the one parallel-iterator shape the workspace uses —
//! `slice.par_chunks_mut(n).enumerate().for_each(f)` — implemented with
//! `std::thread::scope` over the machine's available parallelism instead of
//! rayon's work-stealing pool.  Work items are split into contiguous batches,
//! one batch per thread, which matches the matmul row-partitioning use case
//! (uniform cost per item, few large items).

use std::num::NonZeroUsize;

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::slice::ParallelSliceMut;
}

/// Number of worker threads to use for a workload of `n_items` items.
fn n_threads(n_items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n_items)
}

/// Runs `f` over every item, batching items contiguously across threads.
fn parallel_for_each<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let threads = n_threads(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let batch_size = items.len().div_ceil(threads);
    let mut items = items;
    std::thread::scope(|scope| {
        let f = &f;
        while !items.is_empty() {
            let take = batch_size.min(items.len());
            let batch: Vec<I> = items.drain(..take).collect();
            scope.spawn(move || {
                for item in batch {
                    f(item);
                }
            });
        }
    });
}

pub mod slice {
    //! Parallel operations on slices.

    use super::parallel_for_each;

    /// Extension trait adding `par_chunks_mut` to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into non-overlapping mutable chunks of
        /// `chunk_size` elements (the last chunk may be shorter) that can be
        /// processed in parallel.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// Parallel iterator over mutable chunks of a slice.
    pub struct ParChunksMut<'a, T: Send> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs every chunk with its index.
        pub fn enumerate(self) -> ParEnumerate<'a, T> {
            ParEnumerate {
                chunks: self.chunks.into_iter().enumerate().collect(),
            }
        }

        /// Applies `f` to every chunk, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            parallel_for_each(self.chunks, f);
        }
    }

    /// Enumerated parallel iterator over mutable chunks.
    pub struct ParEnumerate<'a, T: Send> {
        chunks: Vec<(usize, &'a mut [T])>,
    }

    impl<'a, T: Send> ParEnumerate<'a, T> {
        /// Applies `f` to every `(index, chunk)` pair, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Sync,
        {
            parallel_for_each(self.chunks, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerate_for_each_touches_every_chunk_once() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, pos / 10 + 1);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = [1.0f32; 8];
        data.par_chunks_mut(100).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn closures_can_capture_shared_state() {
        let src: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 64];
        let bias = 1.5f32;
        dst.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = src[i * 7 + j] + bias;
            }
        });
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.5);
        }
    }
}
