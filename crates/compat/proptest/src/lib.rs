//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over range and `collection::vec` strategies,
//! [`prelude::ProptestConfig`] with a case count, and the `prop_assert*`
//! macros.  Unlike real proptest there is no shrinking and no persisted
//! failure corpus: cases are drawn from a fixed-seed deterministic RNG, so a
//! failing case reproduces identically on every run — which is exactly the
//! determinism the repository's test policy asks for.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::RngCore;

/// Deterministic case RNG handed to strategies.
pub type TestRng = StdRng;

/// Creates the fixed-seed RNG used for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name so different tests draw different streams,
    // but every run of the same test draws the same cases.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($t:ty) => {
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        };
    }
    int_strategy!(u32);
    int_strategy!(u64);
    int_strategy!(usize);
    int_strategy!(i32);
    int_strategy!(i64);
    int_strategy!(f32);
    int_strategy!(f64);

    /// Strategy wrapper produced by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Configuration of a property-test block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that evaluates `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::prelude::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let case_info = format!(
                        concat!("case {} of {}: ", $(stringify!($arg), " = {:?} "),+),
                        case + 1, config.cases, $(&$arg),+
                    );
                    let run = || -> () { $body };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!("proptest failure in {} ({case_info})", stringify!($name));
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges_generate_in_bounds");
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_rng("vec_strategy_respects_size_range");
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..50, 1..10).generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let va = crate::collection::vec(0u64..1000, 2..8).generate(&mut a);
        let vb = crate::collection::vec(0u64..1000, 2..8).generate(&mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_macro_generates_and_asserts(
            x in 0u32..100,
            scale in 1usize..4,
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(scale.min(3), scale.min(3));
            prop_assert_ne!(scale, 0);
        }
    }

    proptest! {
        #[test]
        fn prop_macro_without_config_uses_default(v in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }
}
