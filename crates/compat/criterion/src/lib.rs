//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset the bench targets use — `bench_function` with
//! `Bencher::iter` / `Bencher::iter_batched`, plus the `criterion_group!` /
//! `criterion_main!` macros — and reports a simple mean wall-clock time per
//! iteration.  No statistical analysis, plotting or baseline storage: the
//! goal is that `cargo bench` runs offline and prints comparable numbers.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// harness always runs one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    target_time: Duration,
}

impl Bencher {
    fn new(target_time: Duration) -> Self {
        Self {
            samples: Vec::new(),
            target_time,
        }
    }

    /// Measures `routine` repeatedly until the target measurement time is
    /// reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let started = Instant::now();
        while started.elapsed() < self.target_time || self.samples.len() < 10 {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Measures `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while started.elapsed() < self.target_time || self.samples.len() < 10 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) -> BenchReport {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return BenchReport {
                name: name.to_string(),
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                iters: 0,
            };
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        println!(
            "{name:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} iters)",
            self.samples.len()
        );
        BenchReport {
            name: name.to_string(),
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            max_ns: max.as_nanos() as f64,
            iters: self.samples.len(),
        }
    }
}

/// Summary statistics of one finished benchmark, exposed so bench binaries
/// can emit machine-readable results (e.g. `BENCH_kernels.json`).  The real
/// criterion persists this under `target/criterion/`; the stand-in hands it
/// back to the caller instead.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration in nanoseconds.
    pub min_ns: f64,
    /// Slowest observed iteration in nanoseconds.
    pub max_ns: f64,
    /// Number of measured iterations.
    pub iters: usize,
}

/// Benchmark registry and runner (criterion API subset).
pub struct Criterion {
    target_time: Duration,
    reports: Vec<BenchReport>,
}

impl Default for Criterion {
    fn default() -> Self {
        let target_ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            target_time: Duration::from_millis(target_ms),
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement time.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.target_time = time;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.target_time);
        f(&mut bencher);
        let report = bencher.report(name);
        self.reports.push(report);
        self
    }

    /// Statistics of every benchmark run so far, in execution order.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        let mut c2 = std::mem::take(c);
        c2 = c2.measurement_time(Duration::from_millis(2));
        c2.bench_function("macro smoke", |b| b.iter(|| 2 * 2));
        *c = c2;
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke_group();
    }
}
