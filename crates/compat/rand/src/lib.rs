//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`Rng`], [`SeedableRng`] and [`rngs::StdRng`].  The generator is a
//! SplitMix64 core — not cryptographic, but fully deterministic per seed,
//! which is the only property the reproduction relies on (seeded synthetic
//! weights and samplers must be bit-reproducible across runs).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    };
}
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i32);
int_range!(i64);

/// User-facing sampling interface, automatically implemented for every
/// [`RngCore`] (matching how `rand::Rng` blankets `RngCore`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Constructing a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator with a SplitMix64 core.
    ///
    /// The real `StdRng` is a ChaCha block cipher; for this reproduction only
    /// determinism and reasonable equidistribution matter, and SplitMix64
    /// passes BigCrush for both.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
