//! Offline stand-in for the `crossbeam` crate.
//!
//! The threaded cluster driver only needs unbounded MPSC channels with
//! `try_recv` / `recv_timeout` and clonable senders — exactly what
//! `std::sync::mpsc` provides, so this crate is a thin re-export.  The error
//! enums are the std ones; their variants (`Empty` / `Disconnected`,
//! `Timeout` / `Disconnected`) are named identically to crossbeam's.

pub mod channel {
    //! Multi-producer single-consumer channels (crossbeam API subset).

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending side of an unbounded channel.  Clonable; sends never block.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving side of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(42).unwrap());
        h.join().unwrap();
        tx.send(7).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 42]);
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
