//! Property tests for the continuous-batching scheduler and server.
//!
//! For any workload interleaving the scheduler admits, three properties must
//! hold (all deterministic — the compat proptest draws cases from a fixed
//! seed, and `Sim`-mode serving is bit-reproducible):
//!
//! 1. **Completion** — every admitted request completes;
//! 2. **Isolation** — every request's `Sim`-mode token stream is
//!    byte-identical to its solo `Deployment::run` output, regardless of
//!    what ran concurrently;
//! 3. **No starvation** — equal-priority admission is non-overtaking, the
//!    in-flight window bound is never exceeded, and no request waits longer
//!    than the total service demand admitted before it.

use pi_perf::{ClusterSpec, ModelPair};
use pi_serve::{BurstyWorkload, Completion, Server, ServerConfig, WorkloadGen};
use pi_spec::deploy::{Deployment, ExecutionMode, IterativeStrategy};
use pi_spec::GenConfig;
use proptest::prelude::*;

fn sim_mode() -> ExecutionMode {
    ExecutionMode::Sim {
        pair: ModelPair::dolphin_tinyllama(),
        cluster: ClusterSpec::cluster_c(2),
        oracle_seed: 42,
    }
}

fn base_config(n_generate: usize) -> GenConfig {
    GenConfig {
        prompt: vec![3; 6],
        n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 2048,
    }
}

/// Admission key: arrival, then id (the FIFO order for equal priorities).
fn admission_order(completions: &[Completion]) -> Vec<&Completion> {
    let mut by_admission: Vec<&Completion> = completions.iter().collect();
    by_admission.sort_by(|a, b| {
        a.timing
            .arrival
            .partial_cmp(&b.timing.arrival)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    by_admission
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn served_streams_complete_isolate_and_never_starve(
        n_requests in 1usize..10,
        window in 1usize..5,
        seed in 0u64..1_000,
        n_generate in 4usize..12,
    ) {
        let workload = BurstyWorkload {
            base: base_config(n_generate),
            n_requests,
            mean_interarrival: 0.5,
            seed,
        };
        let requests = workload.generate();
        let deployment = Deployment::new(IterativeStrategy);
        let server = Server::new(
            deployment.prepare(&sim_mode(), 2),
            ServerConfig { max_in_flight: window },
        );
        let report = server.serve(requests.clone());

        // 1. Every request completes.
        prop_assert_eq!(report.len(), n_requests);
        for c in report.completions() {
            prop_assert!(c.output.completed, "request {} did not complete", c.id);
            prop_assert_eq!(c.n_tokens(), n_generate);
        }

        // 2. Per-request isolation: byte-identical to the solo run.
        for req in &requests {
            let served = report.completion(req.id).unwrap();
            let solo = deployment.run(&sim_mode(), 2, &req.gen);
            prop_assert_eq!(
                &served.output.record.tokens,
                &solo.record.tokens,
                "request {} diverged from its solo run",
                req.id
            );
        }

        // 3a. Equal-priority FIFO is non-overtaking.
        let by_admission = admission_order(report.completions());
        for pair in by_admission.windows(2) {
            prop_assert!(
                pair[0].timing.started <= pair[1].timing.started,
                "request {} overtook request {}",
                pair[1].id,
                pair[0].id
            );
        }

        // 3b. The window bound is respected at every admission instant.
        for probe in report.completions() {
            let overlapping = report
                .completions()
                .iter()
                .filter(|c| {
                    c.timing.started <= probe.timing.started
                        && probe.timing.started < c.timing.finished
                })
                .count();
            prop_assert!(
                overlapping <= window,
                "{overlapping} requests in flight at t={} with window {window}",
                probe.timing.started
            );
        }

        // 3c. Starvation bound: a request's wait never exceeds the total
        // service demand admitted before it (the window-1 worst case).
        for (pos, c) in by_admission.iter().enumerate() {
            let demand_ahead: f64 = by_admission[..pos]
                .iter()
                .map(|p| p.timing.service())
                .sum();
            prop_assert!(
                c.timing.started <= c.timing.arrival + demand_ahead + 1e-9,
                "request {} waited {} with only {} s of demand ahead",
                c.id,
                c.timing.wait(),
                demand_ahead
            );
        }
    }
}
