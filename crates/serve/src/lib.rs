//! # pi-serve
//!
//! The serving layer of the PipeInfer reproduction: a long-lived [`Server`]
//! that owns one warmed-up [`PreparedDeployment`](pi_spec::PreparedDeployment)
//! and admits a *stream* of generation requests, instead of the one
//! `GenConfig` per call that `Deployment::run` executes.
//!
//! The paper's headline claims are about inter-token latency and system
//! utilisation *under varied workloads* — properties that only become
//! observable once many requests contend for one deployment.  This crate
//! makes them measurable:
//!
//! * [`Request`] — a `GenConfig` plus arrival time and priority
//!   ([`request`]);
//! * [`WorkloadGen`] — pluggable traffic shapes: steady, bursty
//!   (Poisson-like, seeded and fully deterministic) and mixed prompt/output
//!   lengths ([`workload`]);
//! * [`scheduler`] — the continuous-batching admission policy: FIFO
//!   admission over a bounded in-flight window, with priorities ordering the
//!   waiting queue;
//! * [`Server`] — executes the stream over one prepared deployment with at
//!   most `max_in_flight` requests running concurrently, refilling each slot
//!   the moment a run completes, and invokes completion callbacks
//!   ([`server`]);
//! * [`ServeReport`] — the per-request metrics pipeline: TTFT, inter-token
//!   latency, end-to-end p50/p95/p99 and goodput, rendered into the shared
//!   `pi_metrics::Figure` machinery ([`report`]).
//!
//! ## Session isolation and determinism
//!
//! Every request runs as an isolated session: `PreparedDeployment::run`
//! builds fresh engines and workers (fresh KV caches and run trackers)
//! around the shared model weights and validated layout, so a request's
//! token stream is byte-identical to what a solo `Deployment::run` with the
//! same `GenConfig` produces — concurrency never changes outputs.  In `Sim`
//! mode the whole pipeline (service times, admission timeline, percentiles)
//! is deterministic, which is what the serving bench and the property tests
//! rely on.
//!
//! ## Quickstart
//!
//! ```
//! use pi_serve::{BurstyWorkload, Server, ServerConfig, WorkloadGen};
//! use pi_spec::deploy::{Deployment, ExecutionMode, SpeculativeStrategy};
//! use pi_spec::GenConfig;
//! # use pi_perf::{ClusterSpec, ModelPair};
//! # let mode = ExecutionMode::Sim {
//! #     pair: ModelPair::dolphin_tinyllama(),
//! #     cluster: ClusterSpec::cluster_c(4),
//! #     oracle_seed: 42,
//! # };
//!
//! let prepared = Deployment::new(SpeculativeStrategy).prepare(&mode, 4);
//! let server = Server::new(prepared, ServerConfig { max_in_flight: 4 });
//! let workload = BurstyWorkload {
//!     base: GenConfig::small_test(vec![7; 8], 8),
//!     n_requests: 6,
//!     mean_interarrival: 0.5,
//!     seed: 1,
//! };
//! let report = server.serve(workload.generate());
//! assert_eq!(report.len(), 6);
//! println!("{}", report.render());
//! ```

pub mod report;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod workload;

pub use report::ServeReport;
pub use request::{Completion, Request, RequestId, RequestTiming};
pub use scheduler::{admission_order, plan, SchedulerConfig, Slot};
pub use server::{pool_admission_spans, Server, ServerConfig};
pub use workload::{
    BurstyWorkload, MixedWorkload, SharedPrefixWorkload, SteadyWorkload, WorkloadGen,
};
