//! Request-stream types: what a client submits and what it gets back.
//!
//! All times are seconds on the *service clock*: virtual time in `Sim` mode
//! (the deterministic discrete-event clock), wall-clock time in `Real` mode.

use pi_spec::{GenConfig, RunOutput};

/// Identifier of a request within one served stream.
pub type RequestId = u64;

/// One generation request admitted to a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Stream-unique identifier (workload generators number requests from 0).
    pub id: RequestId,
    /// Generation parameters: prompt, token budget, speculation knobs.
    pub gen: GenConfig,
    /// Arrival time on the service clock, seconds.
    pub arrival: f64,
    /// Scheduling priority: among requests waiting in the queue the highest
    /// priority is admitted first; ties fall back to FIFO (arrival, then id).
    pub priority: u8,
}

impl Request {
    /// Creates a default-priority request.
    pub fn new(id: RequestId, gen: GenConfig, arrival: f64) -> Self {
        Self {
            id,
            gen,
            arrival,
            priority: 0,
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Per-request latency timeline on the service clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// When the request arrived at the server.
    pub arrival: f64,
    /// When the scheduler admitted it into the in-flight window.
    pub started: f64,
    /// When its first generated token was accepted.
    pub first_token: f64,
    /// When its generation finished.
    pub finished: f64,
}

impl RequestTiming {
    /// Queueing delay: admission minus arrival.
    pub fn wait(&self) -> f64 {
        self.started - self.arrival
    }

    /// Time-to-first-token as the client observes it: first accepted token
    /// minus arrival (queueing delay and prompt processing included).
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency: completion minus arrival.
    pub fn e2e(&self) -> f64 {
        self.finished - self.arrival
    }

    /// Pure service time: completion minus admission.
    pub fn service(&self) -> f64 {
        self.finished - self.started
    }
}

/// A completed request: its run output plus the latency timeline.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's identifier.
    pub id: RequestId,
    /// The request's scheduling priority.
    pub priority: u8,
    /// The latency timeline on the service clock.
    pub timing: RequestTiming,
    /// The full run output (tokens, generation record, cluster stats).
    pub output: RunOutput,
}

impl Completion {
    /// Number of tokens the request generated.
    pub fn n_tokens(&self) -> usize {
        self.output.record.tokens.len()
    }

    /// Mean inter-token latency inside the run.
    pub fn mean_itl(&self) -> f64 {
        self.output.record.mean_itl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_derivations() {
        let t = RequestTiming {
            arrival: 1.0,
            started: 1.5,
            first_token: 2.0,
            finished: 4.0,
        };
        assert!((t.wait() - 0.5).abs() < 1e-12);
        assert!((t.ttft() - 1.0).abs() < 1e-12);
        assert!((t.e2e() - 3.0).abs() < 1e-12);
        assert!((t.service() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn request_builder() {
        let r = Request::new(3, GenConfig::small_test(vec![1], 4), 0.25).with_priority(2);
        assert_eq!(r.id, 3);
        assert_eq!(r.priority, 2);
        assert_eq!(r.arrival, 0.25);
    }
}
