//! The long-lived server: one warmed-up deployment serving a request stream.
//!
//! A [`Server`] owns a [`PreparedDeployment`] — strategy, `Arc`-shared model
//! weights and validated rank layout, built once — and executes every
//! admitted request over it.  Execution uses a pool of `max_in_flight`
//! worker threads pulling requests in admission order, so up to a full
//! window of requests genuinely runs concurrently and each slot is refilled
//! the moment its run completes (continuous batching at request
//! granularity).  Each run is an isolated session (fresh KV caches and run
//! trackers inside `PreparedDeployment::run`), which is why concurrency can
//! never change a request's token stream.
//!
//! ## Clocks
//!
//! Latency metrics live on the *service clock*: in `Sim` mode a request's
//! service duration is the virtual makespan of its run (deterministic), in
//! `Real` mode it is the measured wall time.  The admission timeline — who
//! waited behind whom under the window bound — is then reconstructed by the
//! deterministic [`scheduler`](crate::scheduler) from arrivals, priorities
//! and service durations, so `Sim`-mode serving metrics are bit-reproducible
//! run to run.
//!
//! `Real`-mode caveat: the timeline is a queueing *model* over measured
//! service times, not a trace of an online server.  Wall times are measured
//! while up to a window of other runs contend for the same cores (arrival
//! gaps are not replayed during execution), so `Real`-mode latency
//! aggregates are approximations — `Sim` mode is the measurement-grade
//! path, `Real` mode demonstrates genuine concurrent serving of real
//! models.

use crate::report::ServeReport;
use crate::request::{Completion, Request, RequestTiming};
use crate::scheduler::{plan, SchedulerConfig};
use pi_model::KvPagePool;
use pi_spec::deploy::{ExecutionMode, PreparedDeployment, RunOutput};
use pi_trace::{Clock, MonotonicClock, TraceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum number of requests in flight at once (window size and worker
    /// pool width).
    pub max_in_flight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { max_in_flight: 8 }
    }
}

/// A long-lived server over one prepared deployment.
pub struct Server {
    prepared: PreparedDeployment,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    trace: Option<TraceConfig>,
}

impl Server {
    /// Wraps a prepared deployment.  Prepare it once with
    /// [`Deployment::prepare`](pi_spec::Deployment::prepare) and keep the
    /// server alive across request streams.
    pub fn new(prepared: PreparedDeployment, config: ServerConfig) -> Self {
        assert!(config.max_in_flight >= 1, "window must admit at least one");
        Self {
            prepared,
            config,
            clock: Arc::new(MonotonicClock::new()),
            trace: None,
        }
    }

    /// Replaces the wall-clock source used for `Real`-mode service-time
    /// measurement (tests inject a [`pi_trace::ManualClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a per-request structured event recorder: every request's
    /// [`Completion`] carries its run's cross-rank trace, and the report's
    /// bubble-fraction aggregate becomes available.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The underlying prepared deployment.
    pub fn prepared(&self) -> &PreparedDeployment {
        &self.prepared
    }

    /// The server configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Name of the strategy this server deploys.
    pub fn strategy_name(&self) -> &'static str {
        self.prepared.strategy().name()
    }

    /// Serves a request stream to completion.
    pub fn serve(&self, requests: Vec<Request>) -> ServeReport {
        self.serve_with(requests, |_| {})
    }

    /// Serves a request stream with **iteration-level batching**: one
    /// [`StepSession`](pi_spec::StepSession) step loop drives every request,
    /// fusing all in-flight micro-batches into a single forest batch per
    /// decode iteration (projections and FFNs run as one `m = Σ cohort
    /// widths` GEMM, attention stays per-sequence).
    ///
    /// Cohort formation is deterministic: requests are admitted in admission
    /// order (arrival, then priority among the waiting, then id) the moment
    /// the session clock reaches their arrival and a slot inside
    /// `max_in_flight` frees up; the cohort re-forms at every step boundary.
    /// Each request's token stream is byte-identical to its solo run and to
    /// thread-pool serving ([`Server::serve`]) — fusion changes the
    /// roofline, never the tokens.
    pub fn serve_stepped(&self, requests: Vec<Request>) -> ServeReport {
        self.serve_stepped_inner(requests, true)
    }

    /// [`Server::serve_stepped`] with fusion disabled: the identical step
    /// loop and admission schedule, but every request's micro-batch is
    /// evaluated alone (a full per-stage weight stream per request per
    /// iteration).  This is the request-granularity baseline the
    /// `fig_cohort_batching` bench gate measures fusion against; tokens are
    /// identical to the fused path.
    pub fn serve_stepped_unfused(&self, requests: Vec<Request>) -> ServeReport {
        self.serve_stepped_inner(requests, false)
    }

    fn serve_stepped_inner(&self, requests: Vec<Request>, fused: bool) -> ServeReport {
        let window = self.config.max_in_flight;
        let order = crate::scheduler::admission_order(&requests);
        let mut session = self.prepared.begin_session().with_fused(fused);

        // Session-request id -> (request index, admission time).
        let mut live: Vec<(u64, usize, f64)> = Vec::new();
        let mut waiting: std::collections::VecDeque<usize> = order.iter().copied().collect();
        let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());

        loop {
            // Admit every arrived request that fits the window, picking the
            // highest-priority arrival first (FIFO on ties) — the same
            // policy the scheduler plans with.
            loop {
                if live.len() >= window || waiting.is_empty() {
                    break;
                }
                let now = session.now();
                let best = waiting
                    .iter()
                    .enumerate()
                    .filter(|(_, &idx)| requests[idx].arrival <= now)
                    .max_by(|(_, &a), (_, &b)| {
                        let (ra, rb) = (&requests[a], &requests[b]);
                        ra.priority.cmp(&rb.priority).then(
                            rb.arrival
                                .partial_cmp(&ra.arrival)
                                .expect("arrivals comparable")
                                .then(rb.id.cmp(&ra.id)),
                        )
                    })
                    .map(|(pos, _)| pos);
                let Some(pos) = best else { break };
                let idx = waiting.remove(pos).expect("position in deque");
                let sid = session.admit(&requests[idx].gen);
                live.push((sid, idx, now));
            }

            if session.active() == 0 {
                // Idle: jump to the next arrival, or finish the stream.
                match waiting.front() {
                    Some(&idx) => session.advance_to(requests[idx].arrival),
                    None => break,
                }
                continue;
            }

            for sid in session.step_cohort().finished {
                let pos = live
                    .iter()
                    .position(|&(s, _, _)| s == sid)
                    .expect("finished request was live");
                let (_, idx, started) = live.remove(pos);
                let output = session.take_output(sid).expect("finished output");
                let req = &requests[idx];
                let first_token = output
                    .record
                    .accept_times
                    .first()
                    .copied()
                    .unwrap_or(output.record.finished_at);
                completions.push(Completion {
                    id: req.id,
                    priority: req.priority,
                    timing: RequestTiming {
                        arrival: req.arrival,
                        started,
                        first_token,
                        finished: output.record.finished_at,
                    },
                    output,
                });
            }
        }

        completions.sort_by(|a, b| {
            a.timing
                .finished
                .partial_cmp(&b.timing.finished)
                .expect("finish times must be comparable")
                .then(a.id.cmp(&b.id))
        });
        let report = ServeReport::new(self.strategy_name(), window, completions)
            .with_cohort(session.stats());
        match self.prepared.kv_pool() {
            Some(pool) => report.with_kv_pool(pool.stats()),
            None => report,
        }
    }

    /// Serves a request stream, invoking `on_complete` once per request in
    /// service-clock completion order (deterministic in `Sim` mode).
    pub fn serve_with(
        &self,
        requests: Vec<Request>,
        mut on_complete: impl FnMut(&Completion),
    ) -> ServeReport {
        let n = requests.len();
        let window = self.config.max_in_flight;

        let exec_order = crate::scheduler::admission_order(&requests);

        // Phase 0 — deterministic KV-pool admission pre-pass (`Sim` mode
        // only).  When the prepared deployment owns a page pool, walk the
        // admission stream *sequentially* in admission order performing each
        // request's pool lifecycle (admit, match the longest committed
        // prefix, commit the prompt chain) while keeping at most `window`
        // requests pinned — the pool occupancy an online server with this
        // in-flight bound would see.  Concurrent phase-1 execution then
        // replays the pre-computed cached spans, so prefix hit rates,
        // refusals and every latency figure are bit-reproducible regardless
        // of thread timing.  Refused requests still execute — on isolated
        // flat caches with no cached span — and surface in the report's
        // refusal column.
        //
        // `Real` mode skips the pre-pass: its runs ignore externally computed
        // spans (no physical pages back them), so pre-pass counters would
        // claim prefill reuse that never happened.  Instead each `Real` run
        // goes through the deployment's own pooled path, which admits,
        // attaches committed stage pages, and commits physical chains — the
        // pool stats attached below then reflect genuine reuse.
        let pool = self.prepared.kv_pool().cloned();
        let sim_spans = pool.is_some() && matches!(self.prepared.mode(), ExecutionMode::Sim { .. });
        let prefix_cached = match &pool {
            Some(pool) if sim_spans => pool_admission_spans(pool, &requests, &exec_order, window),
            _ => vec![0; n],
        };

        // Phase 1 — execute every request over the shared prepared
        // deployment, at most `window` concurrently, pulled in the same
        // admission-stream order the scheduler plans over.
        let outputs: Vec<Mutex<Option<(RunOutput, f64)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..window.min(n) {
                s.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let idx = exec_order[k];
                    let wall_start = self.clock.now();
                    let gen = &requests[idx].gen;
                    let out = match (sim_spans, self.trace) {
                        (true, Some(cfg)) => {
                            self.prepared
                                .run_prefix_cached_traced(gen, prefix_cached[idx], cfg)
                        }
                        (true, None) => self.prepared.run_prefix_cached(gen, prefix_cached[idx]),
                        (false, Some(cfg)) => self.prepared.run_traced(gen, cfg),
                        (false, None) => self.prepared.run(gen),
                    };
                    let wall = (self.clock.now() - wall_start).max(0.0);
                    *outputs[idx].lock().unwrap() = Some((out, wall));
                });
            }
        });
        let runs: Vec<(RunOutput, f64)> = outputs
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every request must have executed")
            })
            .collect();

        // Phase 2 — service durations on the service clock.
        let services: Vec<f64> = runs
            .iter()
            .map(|(out, wall)| service_time(self.prepared.mode(), out, *wall))
            .collect();

        // Phase 3 — the deterministic admission timeline.
        let slots = plan(
            &requests,
            &services,
            SchedulerConfig {
                max_in_flight: window,
            },
        );

        // Phase 4 — per-request completions, delivered in finish order.
        let mut completions: Vec<Completion> = requests
            .iter()
            .zip(runs)
            .zip(&slots)
            .map(|((req, (output, _)), slot)| {
                let first_token_offset = output
                    .record
                    .accept_times
                    .first()
                    .copied()
                    .unwrap_or(slot.finished - slot.started);
                Completion {
                    id: req.id,
                    priority: req.priority,
                    timing: RequestTiming {
                        arrival: req.arrival,
                        started: slot.started,
                        first_token: slot.started + first_token_offset,
                        finished: slot.finished,
                    },
                    output,
                }
            })
            .collect();
        completions.sort_by(|a, b| {
            a.timing
                .finished
                .partial_cmp(&b.timing.finished)
                .expect("finish times must be comparable")
                .then(a.id.cmp(&b.id))
        });
        for completion in &completions {
            on_complete(completion);
        }
        let report = ServeReport::new(self.strategy_name(), window, completions);
        match &pool {
            Some(pool) => report.with_kv_pool(pool.stats()),
            None => report,
        }
    }
}

/// The deterministic KV-pool admission pre-pass over one request stream.
///
/// Walks `order` (indices into `requests`, admission-stream order)
/// sequentially, performing each request's pool lifecycle — admit, match the
/// longest committed prefix, commit the prompt chain — while keeping at most
/// `window` tickets pinned: the pool occupancy an online server with that
/// in-flight bound would see.  Returns the per-request cached prefix span
/// (index-aligned with `requests`; `0` for refused requests).  Hit, eviction
/// and refusal counts accumulate in `pool.stats()`.
///
/// [`Server::serve_with`] uses this (in `Sim` mode only — `Real` runs
/// attach physical pages through the deployment's own pooled path instead)
/// to pre-compute prefill-reuse spans so concurrent execution stays
/// bit-reproducible; the serving bench reuses it to probe the largest
/// sustainable window of a pool geometry without paying for model execution.
pub fn pool_admission_spans(
    pool: &KvPagePool,
    requests: &[Request],
    order: &[usize],
    window: usize,
) -> Vec<usize> {
    let mut spans = vec![0; requests.len()];
    let mut live: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    for &idx in order {
        if live.len() >= window.max(1) {
            if let Some(oldest) = live.pop_front() {
                pool.end_request(oldest);
            }
        }
        let gen = &requests[idx].gen;
        if let Ok(ticket) = pool.begin_request(&gen.prompt, gen.n_generate, &[]) {
            spans[idx] = ticket.cached_tokens;
            pool.commit_chain(ticket.id, &gen.prompt, None);
            live.push_back(ticket.id);
        }
    }
    for ticket in live {
        pool.end_request(ticket);
    }
    spans
}

/// The service duration of one run: virtual makespan under `Sim`, measured
/// wall time under `Real`.
fn service_time(mode: &ExecutionMode, out: &RunOutput, wall: f64) -> f64 {
    match mode {
        ExecutionMode::Real { .. } => wall,
        ExecutionMode::Sim { .. } => out.record.finished_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{BurstyWorkload, MixedWorkload, WorkloadGen};
    use pi_perf::{ClusterSpec, ModelPair};
    use pi_spec::deploy::{Deployment, IterativeStrategy, SpeculativeStrategy};
    use pi_spec::GenConfig;
    use pipeinfer_core::PipeInferStrategy;

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    fn base() -> GenConfig {
        GenConfig {
            prompt: vec![5; 12],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        }
    }

    fn deployments() -> Vec<Deployment> {
        vec![
            Deployment::new(IterativeStrategy),
            Deployment::new(SpeculativeStrategy),
            Deployment::new(PipeInferStrategy::default()),
        ]
    }

    #[test]
    fn eight_concurrent_requests_match_solo_runs_for_all_strategies() {
        // The acceptance bar: ≥ 8 concurrent requests over one prepared
        // deployment, per-request Sim outputs byte-identical to solo runs.
        let workload = MixedWorkload {
            base: base(),
            n_requests: 8,
            mean_interarrival: 0.2,
            prompt_len: (4, 16),
            n_generate: (8, 20),
            seed: 11,
        };
        for deployment in deployments() {
            let requests = workload.generate();
            let server = Server::new(
                deployment.prepare(&sim_mode(4), 4),
                ServerConfig { max_in_flight: 8 },
            );
            let report = server.serve(requests.clone());
            assert_eq!(report.len(), 8);
            for req in &requests {
                let served = report.completion(req.id).unwrap();
                assert!(served.output.completed);
                let solo = deployment.run(&sim_mode(4), 4, &req.gen);
                assert_eq!(
                    served.output.record.tokens,
                    solo.record.tokens,
                    "{}: request {} diverged from its solo run",
                    server.strategy_name(),
                    req.id
                );
                assert_eq!(served.output.record.finished_at, solo.record.finished_at);
            }
        }
    }

    #[test]
    fn serving_metrics_are_deterministic_in_sim_mode() {
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 6,
            mean_interarrival: 0.3,
            seed: 5,
        };
        let server = || {
            Server::new(
                Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4),
                ServerConfig { max_in_flight: 3 },
            )
        };
        let a = server().serve(workload.generate());
        let b = server().serve(workload.generate());
        assert_eq!(a.goodput(), b.goodput());
        assert_eq!(a.e2e_summary(), b.e2e_summary());
        for (x, y) in a.completions().iter().zip(b.completions()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.timing, y.timing);
        }
    }

    #[test]
    fn pooled_serving_shares_prefixes_and_stays_byte_identical() {
        use crate::workload::SharedPrefixWorkload;
        use pi_model::{KvPagePool, KvPoolConfig};
        // 90 %-shared-system-prompt traffic over a page pool: every request's
        // token stream must still match its solo (pool-free) run, the pool
        // must register prefix hits, and the whole report — including the
        // pool counters — must be bit-reproducible.
        let workload = SharedPrefixWorkload {
            base: base(),
            n_requests: 10,
            mean_interarrival: 0.1,
            shared_fraction: 0.9,
            prefix_len: (16, 24),
            suffix_len: (2, 6),
            seed: 21,
        };
        for deployment in deployments() {
            let serve = |pooled: bool| {
                let mut prepared = deployment.prepare(&sim_mode(4), 4);
                if pooled {
                    prepared = prepared.with_kv_pool(KvPagePool::new(KvPoolConfig {
                        tokens_per_page: 8,
                        n_pages: 256,
                    }));
                }
                Server::new(prepared, ServerConfig { max_in_flight: 4 }).serve(workload.generate())
            };
            let pooled = serve(true);
            let flat = serve(false);
            assert!(flat.kv_pool_stats().is_none());
            let stats = pooled.kv_pool_stats().expect("pool stats must surface");
            assert_eq!(stats.requests, 10);
            assert!(
                stats.share_hits > 0,
                "shared prompts must hit the radix index"
            );
            assert!(pooled.prefix_hit_rate() > 0.5);
            assert_eq!(stats.refusals, 0);
            for req in workload.generate() {
                let served = pooled.completion(req.id).unwrap();
                let solo = deployment.run(&sim_mode(4), 4, &req.gen);
                assert_eq!(
                    served.output.record.tokens, solo.record.tokens,
                    "request {} diverged from its solo run under the pool",
                    req.id
                );
                // Prefill reuse can only help the absolute first-token time
                // (`accept_times[0]` counts prefill; `ttft()` does not).
                let first =
                    |r: &ServeReport, id| r.completion(id).unwrap().output.record.accept_times[0];
                assert!(first(&pooled, req.id) <= first(&flat, req.id) + 1e-12);
            }
            // At least one shared request genuinely skipped prefill.
            let faster = workload.generate().iter().any(|req| {
                pooled
                    .completion(req.id)
                    .unwrap()
                    .output
                    .record
                    .accept_times[0]
                    < flat.completion(req.id).unwrap().output.record.accept_times[0]
            });
            assert!(faster, "prefix hits must shorten some first-token time");
            // Bit-reproducible, pool counters included.
            let again = serve(true);
            assert_eq!(again.kv_pool_stats(), Some(stats));
            for (x, y) in pooled.completions().iter().zip(again.completions()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.timing, y.timing);
            }
        }
    }

    #[test]
    fn pool_exhaustion_surfaces_refusals_but_serves_every_request() {
        use crate::workload::SharedPrefixWorkload;
        use pi_model::{KvPagePool, KvPoolConfig};
        let workload = SharedPrefixWorkload {
            base: base(),
            n_requests: 8,
            mean_interarrival: 0.1,
            shared_fraction: 0.9,
            prefix_len: (16, 24),
            suffix_len: (2, 6),
            seed: 3,
        };
        // A pool far too small for the window: admissions beyond capacity are
        // refused (never a panic), refused requests fall back to flat caches
        // and still complete, and the refusal count lands in the report.
        let prepared = Deployment::new(IterativeStrategy)
            .prepare(&sim_mode(4), 4)
            .with_kv_pool(KvPagePool::new(KvPoolConfig {
                tokens_per_page: 8,
                n_pages: 6,
            }));
        let report =
            Server::new(prepared, ServerConfig { max_in_flight: 4 }).serve(workload.generate());
        assert_eq!(report.len(), 8);
        assert!(report.completions().iter().all(|c| c.output.completed));
        assert!(report.kv_refusals() > 0, "tiny pool must refuse admissions");
    }

    #[test]
    fn completion_callbacks_fire_in_finish_order() {
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 5,
            mean_interarrival: 0.1,
            seed: 9,
        };
        let server = Server::new(
            Deployment::new(IterativeStrategy).prepare(&sim_mode(4), 4),
            ServerConfig { max_in_flight: 2 },
        );
        let mut seen: Vec<(u64, f64)> = Vec::new();
        let report = server.serve_with(workload.generate(), |c| {
            seen.push((c.id, c.timing.finished));
        });
        assert_eq!(seen.len(), 5);
        assert!(seen.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(
            seen.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            report
                .completions()
                .iter()
                .map(|c| c.id)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn narrow_window_queues_requests_and_widening_it_cuts_latency() {
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 8,
            mean_interarrival: 0.05,
            seed: 2,
        };
        let serve = |window| {
            Server::new(
                Deployment::new(IterativeStrategy).prepare(&sim_mode(4), 4),
                ServerConfig {
                    max_in_flight: window,
                },
            )
            .serve(workload.generate())
        };
        let narrow = serve(1);
        let wide = serve(8);
        // Same work either way…
        assert_eq!(narrow.total_tokens(), wide.total_tokens());
        // …but queueing shows up as end-to-end latency and lost goodput.
        assert!(narrow.e2e_summary().p99 > wide.e2e_summary().p99);
        assert!(narrow.goodput() < wide.goodput());
        assert!(wide.e2e_summary().p50 > 0.0);
    }

    #[test]
    fn tree_speculation_serves_streams_with_adaptive_shapes() {
        use pi_spec::TreeSpeculationStrategy;
        // The 52 %-acceptance pair: the regime where hedging with tree
        // branches beats a pure chain at the same verify-batch budget.
        let mode = ExecutionMode::Sim {
            pair: ModelPair::goliath_xwin7b(),
            cluster: ClusterSpec::cluster_c(4),
            oracle_seed: 42,
        };
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 6,
            mean_interarrival: 0.3,
            seed: 5,
        };
        // Window 1 serialises execution in admission order, so the
        // cross-request shape feedback is deterministic.
        let serve = |deployment: Deployment| {
            Server::new(
                deployment.prepare(&mode, 4),
                ServerConfig { max_in_flight: 1 },
            )
            .serve(workload.generate())
        };
        let tree = serve(Deployment::new(TreeSpeculationStrategy::default()));
        let linear = serve(Deployment::new(SpeculativeStrategy));

        // Token streams are identical: tree shape never changes the output
        // (rounds may overshoot the budget differently, so compare the
        // requested n_generate prefix).
        assert_eq!(tree.len(), linear.len());
        let n = base().n_generate;
        for c in tree.completions() {
            let l = linear.completion(c.id).unwrap();
            assert_eq!(c.output.record.tokens[..n], l.output.record.tokens[..n]);
        }
        // Strictly higher mean accepted-tokens-per-verify at equal budget.
        assert!(
            tree.mean_tokens_per_run() > linear.mean_tokens_per_run(),
            "tree {} <= linear {}",
            tree.mean_tokens_per_run(),
            linear.mean_tokens_per_run()
        );
        assert!(tree.mean_tree_utilization() > 0.0);
        assert_eq!(linear.mean_tree_utilization(), 0.0);

        // The adaptive width/depth visibly changes across the bursty stream…
        let shapes: Vec<Vec<(usize, usize)>> = tree
            .completions()
            .iter()
            .map(|c| c.output.record.tree_shapes.clone())
            .collect();
        assert!(shapes.iter().all(|s| !s.is_empty()));
        assert!(
            shapes.iter().any(|s| s.iter().any(|&shape| shape != s[0])),
            "within-request adaptation must change the shape"
        );
        // …and the cross-request feedback makes later requests *start* at a
        // different shape than the first request's optimistic chain.
        let first_shapes: Vec<(usize, usize)> = shapes.iter().map(|s| s[0]).collect();
        assert!(
            first_shapes.iter().any(|&f| f != first_shapes[0]),
            "feedback through the serve loop must move the starting shape: {first_shapes:?}"
        );
        // The shape trace is visible in the rendered report.
        assert!(tree.render().contains('x'), "{}", tree.render());
    }

    #[test]
    fn traced_serving_records_without_perturbing_output() {
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 4,
            mean_interarrival: 0.2,
            seed: 7,
        };
        let server = |traced: bool| {
            let s = Server::new(
                Deployment::new(PipeInferStrategy::default()).prepare(&sim_mode(4), 4),
                ServerConfig { max_in_flight: 2 },
            );
            if traced {
                s.with_trace(TraceConfig::default())
            } else {
                s
            }
        };
        let plain = server(false).serve(workload.generate());
        let traced = server(true).serve(workload.generate());
        assert_eq!(plain.len(), traced.len());
        for c in traced.completions() {
            let p = plain.completion(c.id).unwrap();
            assert_eq!(
                c.output.record.tokens, p.output.record.tokens,
                "recording must not perturb request {}",
                c.id
            );
            let trace = c.output.trace.as_ref().expect("traced run carries a trace");
            assert!(!trace.events().is_empty());
        }
        assert!(plain.completions().iter().all(|c| c.output.trace.is_none()));
        // A real pipelined run always has *some* bubble; untraced streams
        // report zero because the figure needs the recorder.
        assert!(traced.mean_bubble_fraction() > 0.0);
        assert_eq!(plain.mean_bubble_fraction(), 0.0);
        assert!(traced.render().contains("bubble"));
    }

    #[test]
    fn stepped_serving_matches_thread_pool_serving_byte_for_byte() {
        let workload = MixedWorkload {
            base: base(),
            n_requests: 8,
            mean_interarrival: 0.05,
            prompt_len: (4, 16),
            n_generate: (8, 20),
            seed: 11,
        };
        for deployment in [
            Deployment::new(IterativeStrategy),
            Deployment::new(SpeculativeStrategy),
        ] {
            let server = Server::new(
                deployment.prepare(&sim_mode(4), 4),
                ServerConfig { max_in_flight: 8 },
            );
            let pooled = server.serve(workload.generate());
            let stepped = server.serve_stepped(workload.generate());
            assert_eq!(stepped.len(), 8);
            assert!(stepped.cohort_stats().is_some());
            assert!(pooled.cohort_stats().is_none());
            for req in workload.generate() {
                assert_eq!(
                    stepped.completion(req.id).unwrap().output.record.tokens,
                    pooled.completion(req.id).unwrap().output.record.tokens,
                    "{}: request {} diverged under the step loop",
                    server.strategy_name(),
                    req.id
                );
            }
            // A dense 8-request stream fuses real cohorts.
            assert!(
                stepped.mean_cohort_width() > 2.0,
                "{}: width {}",
                server.strategy_name(),
                stepped.mean_cohort_width()
            );
        }
    }

    #[test]
    fn stepped_serving_is_deterministic_and_beats_unfused() {
        let workload = BurstyWorkload {
            base: base(),
            n_requests: 8,
            mean_interarrival: 0.02,
            seed: 5,
        };
        let server = Server::new(
            Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4),
            ServerConfig { max_in_flight: 8 },
        );
        let a = server.serve_stepped(workload.generate());
        let b = server.serve_stepped(workload.generate());
        assert_eq!(a.goodput(), b.goodput());
        assert_eq!(a.cohort_stats(), b.cohort_stats());
        for (x, y) in a.completions().iter().zip(b.completions()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.timing, y.timing);
        }
        // The request-granularity baseline emits the same tokens slower.
        let unfused = server.serve_stepped_unfused(workload.generate());
        for c in a.completions() {
            assert_eq!(
                c.output.record.tokens,
                unfused.completion(c.id).unwrap().output.record.tokens
            );
        }
        assert!(
            a.goodput() > unfused.goodput(),
            "fused {} tok/s must beat unfused {} tok/s",
            a.goodput(),
            unfused.goodput()
        );
        assert!((unfused.mean_cohort_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stepped_serving_composes_with_the_kv_pool() {
        use crate::workload::SharedPrefixWorkload;
        use pi_model::{KvPagePool, KvPoolConfig};
        let workload = SharedPrefixWorkload {
            base: base(),
            n_requests: 10,
            mean_interarrival: 0.1,
            shared_fraction: 0.9,
            prefix_len: (16, 24),
            suffix_len: (2, 6),
            seed: 21,
        };
        let deployment = Deployment::new(SpeculativeStrategy);
        let prepared = deployment
            .prepare(&sim_mode(4), 4)
            .with_kv_pool(KvPagePool::new(KvPoolConfig {
                tokens_per_page: 8,
                n_pages: 256,
            }));
        let report = Server::new(prepared, ServerConfig { max_in_flight: 4 })
            .serve_stepped(workload.generate());
        let stats = report.kv_pool_stats().expect("pool stats must surface");
        assert_eq!(stats.requests, 10);
        assert!(stats.share_hits > 0, "shared prompts must hit the index");
        for req in workload.generate() {
            let served = report.completion(req.id).unwrap();
            let solo = deployment.run(&sim_mode(4), 4, &req.gen);
            assert_eq!(
                served.output.record.tokens, solo.record.tokens,
                "request {} diverged under pooled stepped serving",
                req.id
            );
        }
    }

    #[test]
    fn strategy_name_and_config_are_exposed() {
        let server = Server::new(
            Deployment::new(PipeInferStrategy::default()).prepare(&sim_mode(4), 4),
            ServerConfig::default(),
        );
        assert_eq!(server.strategy_name(), "PipeInfer");
        assert_eq!(server.config().max_in_flight, 8);
        assert_eq!(server.prepared().n_nodes(), 4);
        let empty = server.serve(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.goodput(), 0.0);
    }
}
