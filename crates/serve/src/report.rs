//! Aggregate per-request latency metrics over one served stream.
//!
//! A [`ServeReport`] is the metrics pipeline's output: per-request
//! completions in finish order plus the aggregates the serving literature
//! reports — goodput (generated tokens per second of stream makespan),
//! client-observed TTFT, mean inter-token latency and end-to-end latency
//! with p50/p95/p99 — rendered into the existing `pi_metrics`
//! [`Figure`]/[`Summary`]/[`Histogram`] machinery.

use crate::request::{Completion, RequestId};
use pi_metrics::{Figure, Histogram, Summary};
use pi_model::KvPoolStats;
use pi_spec::SessionStats;
use pi_trace::BubbleReport;
use std::fmt::Write as _;

/// Per-request completions plus aggregate metrics for one served stream.
#[derive(Debug, Clone)]
pub struct ServeReport {
    strategy: String,
    window: usize,
    completions: Vec<Completion>,
    /// Snapshot of the deployment's KV page pool after the stream completed,
    /// when the server runs over a pool: the `Sim`-mode admission pre-pass's
    /// deterministic counters, or the physical reuse `Real` runs performed.
    kv_pool: Option<KvPoolStats>,
    /// Cohort accounting of the step loop, when the stream was served by
    /// iteration-level batching ([`crate::Server::serve_stepped`]); `None`
    /// under request-granularity thread-pool serving.
    cohort: Option<SessionStats>,
}

impl ServeReport {
    /// Builds a report; `completions` must already be in finish order.
    pub(crate) fn new(strategy: &str, window: usize, completions: Vec<Completion>) -> Self {
        Self {
            strategy: strategy.to_string(),
            window,
            completions,
            kv_pool: None,
            cohort: None,
        }
    }

    /// Attaches the KV page pool's stats snapshot for this stream.
    pub(crate) fn with_kv_pool(mut self, stats: KvPoolStats) -> Self {
        self.kv_pool = Some(stats);
        self
    }

    /// Attaches the step loop's cohort accounting for this stream.
    pub(crate) fn with_cohort(mut self, stats: SessionStats) -> Self {
        self.cohort = Some(stats);
        self
    }

    /// The step loop's cohort accounting, if the stream was served by
    /// iteration-level batching.
    pub fn cohort_stats(&self) -> Option<&SessionStats> {
        self.cohort.as_ref()
    }

    /// Mean requests fused per decode iteration (zero under
    /// request-granularity serving, where no forest batches exist).
    pub fn mean_cohort_width(&self) -> f64 {
        self.cohort.map_or(0.0, |s| s.mean_cohort_width())
    }

    /// The KV page pool's stats snapshot, if the stream was served over a
    /// pool.
    pub fn kv_pool_stats(&self) -> Option<&KvPoolStats> {
        self.kv_pool.as_ref()
    }

    /// Peak pages simultaneously in use by the pool over its lifetime (zero
    /// without a pool).
    pub fn kv_pages_peak(&self) -> u64 {
        self.kv_pool
            .as_ref()
            .map_or(0, |s| s.peak_pages_in_use as u64)
    }

    /// Fraction of pool admissions that attached a cached prompt prefix
    /// (zero without a pool).
    pub fn prefix_hit_rate(&self) -> f64 {
        match &self.kv_pool {
            Some(s) if s.requests > 0 => s.share_hits as f64 / s.requests as f64,
            _ => 0.0,
        }
    }

    /// LRU evictions of committed prefix chains (zero without a pool).
    pub fn kv_evictions(&self) -> u64 {
        self.kv_pool.as_ref().map_or(0, |s| s.evictions)
    }

    /// Requests the pool refused to admit for lack of free pages (zero
    /// without a pool).  Refused requests still complete — they fall back to
    /// isolated flat caches — but each refusal is lost sharing.
    pub fn kv_refusals(&self) -> u64 {
        self.kv_pool.as_ref().map_or(0, |s| s.refusals)
    }

    /// Strategy name the stream was served with.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// In-flight window the stream was served under.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Completions in service-clock finish order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Looks up one request's completion by id.
    pub fn completion(&self, id: RequestId) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// Number of completed requests.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Total tokens generated across the stream.
    pub fn total_tokens(&self) -> usize {
        self.completions.iter().map(Completion::n_tokens).sum()
    }

    /// Stream makespan: last finish minus earliest arrival, seconds.
    pub fn makespan(&self) -> f64 {
        let first = self
            .completions
            .iter()
            .map(|c| c.timing.arrival)
            .fold(f64::INFINITY, f64::min);
        let last = self
            .completions
            .iter()
            .map(|c| c.timing.finished)
            .fold(f64::NEG_INFINITY, f64::max);
        if last > first {
            last - first
        } else {
            0.0
        }
    }

    /// Goodput: generated tokens per second of stream makespan.
    pub fn goodput(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            0.0
        } else {
            self.total_tokens() as f64 / span
        }
    }

    fn summary_of(&self, f: impl Fn(&Completion) -> f64) -> Summary {
        let samples: Vec<f64> = self.completions.iter().map(f).collect();
        Summary::of(&samples)
    }

    /// Client-observed time-to-first-token (queueing included).
    pub fn ttft_summary(&self) -> Summary {
        self.summary_of(|c| c.timing.ttft())
    }

    /// End-to-end latency (arrival to completion).
    pub fn e2e_summary(&self) -> Summary {
        self.summary_of(|c| c.timing.e2e())
    }

    /// Queueing delay (arrival to admission).
    pub fn wait_summary(&self) -> Summary {
        self.summary_of(|c| c.timing.wait())
    }

    /// Per-request mean inter-token latency.
    pub fn itl_summary(&self) -> Summary {
        self.summary_of(Completion::mean_itl)
    }

    fn mean_of(&self, f: impl Fn(&Completion) -> f64) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().map(f).sum::<f64>() / self.completions.len() as f64
    }

    /// Mean accepted-tokens-per-verify across requests: tokens generated per
    /// target-pipeline run, the metric tree speculation trades width/depth
    /// to maximise at a fixed verify-batch budget.
    pub fn mean_tokens_per_run(&self) -> f64 {
        self.mean_of(|c| c.output.record.tokens_per_run())
    }

    /// Mean draft-token acceptance rate across requests.
    pub fn mean_acceptance_rate(&self) -> f64 {
        self.mean_of(|c| c.output.record.acceptance_rate())
    }

    /// Mean tree utilization across requests (zero for linear strategies,
    /// which never speculate tree nodes).
    pub fn mean_tree_utilization(&self) -> f64 {
        self.mean_of(|c| c.output.record.tree_utilization())
    }

    /// Total draft-protocol bytes (requests, responses, cancellations) sent
    /// across all ranks over the whole stream — zero unless the deployment
    /// hosts drafting on a dedicated rank.
    pub fn total_draft_bytes(&self) -> u64 {
        self.completions
            .iter()
            .map(|c| c.output.stats.total_draft_bytes())
            .sum()
    }

    /// Total units of work saved by early cancellation across all ranks over
    /// the whole stream: stage evaluations workers skipped plus stale draft
    /// hypotheses the draft rank dropped unserved.
    pub fn total_cancellations_saved(&self) -> u64 {
        self.completions
            .iter()
            .map(|c| c.output.stats.total_cancellations_saved())
            .sum()
    }

    /// Total draft-rank failovers across the whole stream: requests whose
    /// head abandoned its remote drafter for the local fallback (or degraded
    /// non-speculative decoding) after repeated timeouts/refusals.  Zero on
    /// any fault-free stream.
    pub fn total_failovers(&self) -> u64 {
        self.completions
            .iter()
            .map(|c| c.output.stats.total_failovers())
            .sum()
    }

    /// Mean pipeline-bubble fraction across traced requests: the share of
    /// each run's per-rank timelines spent idle or blocked rather than
    /// computing, averaged over ranks and then over requests (see
    /// [`BubbleReport`]).  Zero when the stream was served without
    /// [`Server::with_trace`](crate::Server::with_trace) — the recorder, not
    /// the pipeline, determines whether the figure exists.
    pub fn mean_bubble_fraction(&self) -> f64 {
        let fracs: Vec<f64> = self
            .completions
            .iter()
            .filter_map(|c| c.output.trace.as_ref())
            .map(|t| BubbleReport::analyze(t).mean_bubble_fraction())
            .collect();
        if fracs.is_empty() {
            0.0
        } else {
            fracs.iter().sum::<f64>() / fracs.len() as f64
        }
    }

    /// End-to-end latency histogram over `[0, max e2e]`.
    pub fn e2e_histogram(&self, n_buckets: usize) -> Histogram {
        let hi = self.e2e_summary().max.max(1e-9);
        let mut h = Histogram::new(0.0, hi, n_buckets);
        for c in &self.completions {
            h.record(c.timing.e2e());
        }
        h
    }

    /// Pushes this report's aggregates into `figure` as one series: goodput,
    /// latency percentiles, plus speculation quality (acceptance rate,
    /// accepted-tokens-per-verify and tree utilization), one x-label per
    /// metric.
    pub fn to_figure(&self, figure: &mut Figure, series: &str) {
        let e2e = self.e2e_summary();
        let ttft = self.ttft_summary();
        figure.push(series, "goodput tok/s", self.goodput());
        figure.push(series, "p50 e2e s", e2e.p50);
        figure.push(series, "p99 e2e s", e2e.p99);
        figure.push(series, "p50 TTFT s", ttft.p50);
        figure.push(series, "p99 TTFT s", ttft.p99);
        figure.push(series, "mean ITL s", self.itl_summary().mean);
        figure.push(series, "accept rate", self.mean_acceptance_rate());
        figure.push(series, "tok/verify", self.mean_tokens_per_run());
        figure.push(series, "tree util", self.mean_tree_utilization());
        figure.push(series, "draft kB", self.total_draft_bytes() as f64 / 1e3);
        figure.push(
            series,
            "cancel saved",
            self.total_cancellations_saved() as f64,
        );
        figure.push(series, "bubble frac", self.mean_bubble_fraction());
        figure.push(series, "failovers", self.total_failovers() as f64);
        figure.push(series, "kv pages peak", self.kv_pages_peak() as f64);
        figure.push(series, "prefix hit", self.prefix_hit_rate());
        figure.push(series, "kv evicts", self.kv_evictions() as f64);
        figure.push(series, "kv refusals", self.kv_refusals() as f64);
        figure.push(series, "cohort width", self.mean_cohort_width());
    }

    /// Renders a per-request table plus the aggregate line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== {} serving report — {} request(s), window {} ===",
            self.strategy,
            self.len(),
            self.window
        );
        let _ = writeln!(
            out,
            "{:>4} {:>4} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8} {:>11}",
            "id", "prio", "arrival", "wait", "TTFT", "e2e", "tokens", "tok/run", "shape"
        );
        for c in &self.completions {
            let shape = match c.output.record.tree_shape_range() {
                Some(((w0, d0), (w1, d1))) => format!("{w0}x{d0}->{w1}x{d1}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:>4} {:>4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7} {:>8.2} {:>11}",
                c.id,
                c.priority,
                c.timing.arrival,
                c.timing.wait(),
                c.timing.ttft(),
                c.timing.e2e(),
                c.n_tokens(),
                c.output.record.tokens_per_run(),
                shape,
            );
        }
        let e2e = self.e2e_summary();
        let _ = write!(
            out,
            "goodput {:.3} tok/s | e2e p50 {:.4} s p95 {:.4} s p99 {:.4} s | ttft p50 {:.4} s",
            self.goodput(),
            e2e.p50,
            e2e.p95,
            e2e.p99,
            self.ttft_summary().p50,
        );
        // Aggregate columns a stream never exercised render as `-` instead of
        // a misleading zero: `accept` without a drafter, `tree util` for
        // linear strategies, `draft kB` under head-hosted drafting, `bubble`
        // without a recorder, `cohort width` under request-granularity
        // serving, and so on.
        let sums = |f: fn(&Completion) -> u64| self.completions.iter().map(f).sum::<u64>();
        if sums(|c| c.output.record.drafted as u64) > 0 {
            let _ = write!(out, " | accept {:.0}%", self.mean_acceptance_rate() * 100.0);
        } else {
            let _ = write!(out, " | accept -");
        }
        let _ = write!(out, " | {:.2} tok/verify", self.mean_tokens_per_run());
        if sums(|c| (c.output.record.tree_rounds + c.output.record.tree_nodes) as u64) > 0 {
            let _ = write!(
                out,
                " | tree util {:.0}%",
                self.mean_tree_utilization() * 100.0
            );
        } else {
            let _ = write!(out, " | tree util -");
        }
        if self.total_draft_bytes() > 0 {
            let _ = write!(
                out,
                " | draft {:.1} kB",
                self.total_draft_bytes() as f64 / 1e3
            );
        } else {
            let _ = write!(out, " | draft -");
        }
        if self.total_cancellations_saved() > 0 {
            let _ = write!(
                out,
                " | {} evals saved by cancellation",
                self.total_cancellations_saved()
            );
        } else {
            let _ = write!(out, " | cancel saved -");
        }
        if self.completions.iter().any(|c| c.output.trace.is_some()) {
            let _ = write!(out, " | bubble {:.0}%", self.mean_bubble_fraction() * 100.0);
        } else {
            let _ = write!(out, " | bubble -");
        }
        if self.total_failovers() > 0 {
            let _ = write!(out, " | {} failover(s)", self.total_failovers());
        } else {
            let _ = write!(out, " | failovers -");
        }
        match &self.cohort {
            Some(s) => {
                let _ = writeln!(
                    out,
                    " | cohort width {:.2} over {} step(s)",
                    s.mean_cohort_width(),
                    s.cohort_steps,
                );
            }
            None => {
                let _ = writeln!(out, " | cohort width -");
            }
        }
        if let Some(kv) = &self.kv_pool {
            let _ = writeln!(
                out,
                "kv pool: {} pages peak | prefix hit {:.0}% ({} of {} admissions, {} tokens reused)                  | {} eviction(s) | {} refusal(s)",
                kv.peak_pages_in_use,
                self.prefix_hit_rate() * 100.0,
                kv.share_hits,
                kv.requests,
                kv.shared_tokens,
                kv.evictions,
                kv.refusals,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestTiming;
    use pi_spec::deploy::RunOutput;
    use pi_spec::GenerationRecord;

    fn completion(
        id: u64,
        arrival: f64,
        started: f64,
        finished: f64,
        n_tokens: usize,
    ) -> Completion {
        let record = GenerationRecord {
            tokens: vec![1; n_tokens],
            prompt_done_at: 0.0,
            accept_times: (0..n_tokens).map(|i| 0.1 * (i + 1) as f64).collect(),
            finished_at: finished - started,
            ..GenerationRecord::default()
        };
        Completion {
            id,
            priority: 0,
            timing: RequestTiming {
                arrival,
                started,
                first_token: started + 0.1,
                finished,
            },
            output: RunOutput {
                record,
                stats: pi_cluster::ClusterStats::new(1),
                completed: true,
                trace: None,
            },
        }
    }

    #[test]
    fn aggregates_over_known_timings() {
        let report = ServeReport::new(
            "Test",
            2,
            vec![
                completion(0, 0.0, 0.0, 2.0, 10),
                completion(1, 0.5, 1.0, 3.0, 10),
            ],
        );
        assert_eq!(report.total_tokens(), 20);
        assert!((report.makespan() - 3.0).abs() < 1e-12);
        assert!((report.goodput() - 20.0 / 3.0).abs() < 1e-12);
        let e2e = report.e2e_summary();
        assert!((e2e.p50 - 2.25).abs() < 1e-12); // median of {2.0, 2.5}
        let wait = report.wait_summary();
        assert!((wait.max - 0.5).abs() < 1e-12);
        assert_eq!(report.completion(1).unwrap().id, 1);
        assert!(report.completion(7).is_none());
    }

    #[test]
    fn figure_and_render_carry_all_metrics() {
        let report = ServeReport::new(
            "Test",
            1,
            vec![
                completion(0, 0.0, 0.0, 1.0, 4),
                completion(1, 0.1, 1.0, 2.0, 4),
            ],
        );
        let mut fig = Figure::new("Serving", "serving metrics", "mixed");
        report.to_figure(&mut fig, "Test");
        assert_eq!(fig.x_labels().len(), 18);
        assert_eq!(fig.value("Test", "cohort width"), Some(0.0));
        assert_eq!(fig.value("Test", "bubble frac"), Some(0.0));
        assert_eq!(fig.value("Test", "kv pages peak"), Some(0.0));
        assert_eq!(fig.value("Test", "prefix hit"), Some(0.0));
        assert_eq!(fig.value("Test", "kv refusals"), Some(0.0));
        assert_eq!(fig.value("Test", "failovers"), Some(0.0));
        assert!(fig.value("Test", "goodput tok/s").unwrap() > 0.0);
        assert!(fig.value("Test", "p99 e2e s").unwrap() >= fig.value("Test", "p50 e2e s").unwrap());
        assert_eq!(fig.value("Test", "tree util"), Some(0.0));
        assert_eq!(fig.value("Test", "draft kB"), Some(0.0));
        assert_eq!(fig.value("Test", "cancel saved"), Some(0.0));
        let text = report.render();
        assert!(text.contains("goodput"));
        assert!(text.contains("window 1"));
        assert!(text.contains("tok/verify"));
        assert!(text.contains("shape"));
        // Metrics the stream never exercised render as `-`, not zeros.
        assert!(text.contains("accept -"), "{text}");
        assert!(text.contains("tree util -"), "{text}");
        assert!(text.contains("draft -"), "{text}");
        assert!(text.contains("cancel saved -"), "{text}");
        assert!(text.contains("bubble -"), "{text}");
        assert!(text.contains("failovers -"), "{text}");
        assert!(text.contains("cohort width -"), "{text}");
        let hist = report.e2e_histogram(8);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn cohort_column_surfaces_step_loop_stats() {
        let stats = SessionStats {
            cohort_steps: 10,
            cohort_width_sum: 25,
            batched_rows: 120,
        };
        let report =
            ServeReport::new("Test", 4, vec![completion(0, 0.0, 0.0, 1.0, 4)]).with_cohort(stats);
        assert!((report.mean_cohort_width() - 2.5).abs() < 1e-12);
        assert_eq!(report.cohort_stats(), Some(&stats));
        let mut fig = Figure::new("Serving", "serving metrics", "mixed");
        report.to_figure(&mut fig, "Test");
        assert_eq!(fig.value("Test", "cohort width"), Some(2.5));
        let text = report.render();
        assert!(text.contains("cohort width 2.50 over 10 step(s)"), "{text}");
    }

    #[test]
    fn speculation_quality_aggregates() {
        let mut a = completion(0, 0.0, 0.0, 1.0, 8);
        a.output.record.runs_launched = 4;
        a.output.record.drafted = 10;
        a.output.record.accepted_drafts = 5;
        a.output.record.tree_nodes = 10;
        a.output.record.tree_accepted_path = 5;
        a.output.record.tree_shapes = vec![(1, 4), (3, 2)];
        let mut b = completion(1, 0.1, 1.0, 2.0, 8);
        b.output.record.runs_launched = 8;
        let report = ServeReport::new("Test", 1, vec![a, b]);
        // Means over {8/4, 8/8}, {0.5, 0.0}, {0.5, 0.0}.
        assert!((report.mean_tokens_per_run() - 1.5).abs() < 1e-12);
        assert!((report.mean_acceptance_rate() - 0.25).abs() < 1e-12);
        assert!((report.mean_tree_utilization() - 0.25).abs() < 1e-12);
        // The per-request shape trace lands in the rendered table.
        assert!(report.render().contains("1x4->3x2"));
    }

    #[test]
    fn draft_traffic_and_cancellation_savings_aggregate_across_requests() {
        let mut a = completion(0, 0.0, 0.0, 1.0, 8);
        a.output.stats = pi_cluster::ClusterStats::new(2);
        a.output.stats.nodes[0].draft_bytes_sent = 1500;
        a.output.stats.nodes[1].draft_bytes_sent = 500;
        a.output.stats.nodes[1].cancellations_saved = 3;
        a.output.stats.nodes[0].draft_timeouts = 4;
        a.output.stats.nodes[0].failovers = 1;
        let mut b = completion(1, 0.1, 1.0, 2.0, 8);
        b.output.stats = pi_cluster::ClusterStats::new(2);
        b.output.stats.nodes[0].cancellations_saved = 2;
        let report = ServeReport::new("Test", 1, vec![a, b]);
        assert_eq!(report.total_draft_bytes(), 2000);
        assert_eq!(report.total_cancellations_saved(), 5);
        assert_eq!(report.total_failovers(), 1);
        let mut fig = Figure::new("Serving", "serving metrics", "mixed");
        report.to_figure(&mut fig, "Test");
        assert_eq!(fig.value("Test", "draft kB"), Some(2.0));
        assert_eq!(fig.value("Test", "cancel saved"), Some(5.0));
        assert_eq!(fig.value("Test", "failovers"), Some(1.0));
        let text = report.render();
        assert!(text.contains("draft 2.0 kB"));
        assert!(text.contains("5 evals saved"));
        assert!(text.contains("1 failover(s)"));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = ServeReport::new("Test", 4, Vec::new());
        assert!(report.is_empty());
        assert_eq!(report.goodput(), 0.0);
        assert_eq!(report.makespan(), 0.0);
        assert_eq!(report.e2e_summary().n, 0);
        assert!(report.kv_pool_stats().is_none());
        assert_eq!(report.prefix_hit_rate(), 0.0);
    }

    #[test]
    fn kv_pool_columns_surface_pool_stats() {
        let stats = KvPoolStats {
            pages_in_use: 3,
            peak_pages_in_use: 7,
            requests: 10,
            share_hits: 6,
            shared_tokens: 480,
            pages_committed: 9,
            evictions: 2,
            refusals: 1,
        };
        let report =
            ServeReport::new("Test", 2, vec![completion(0, 0.0, 0.0, 1.0, 4)]).with_kv_pool(stats);
        assert_eq!(report.kv_pages_peak(), 7);
        assert!((report.prefix_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(report.kv_evictions(), 2);
        assert_eq!(report.kv_refusals(), 1);
        let mut fig = Figure::new("Serving", "serving metrics", "mixed");
        report.to_figure(&mut fig, "Test");
        assert_eq!(fig.value("Test", "kv pages peak"), Some(7.0));
        assert_eq!(fig.value("Test", "prefix hit"), Some(0.6));
        assert_eq!(fig.value("Test", "kv evicts"), Some(2.0));
        assert_eq!(fig.value("Test", "kv refusals"), Some(1.0));
        let text = report.render();
        assert!(text.contains("kv pool"), "{text}");
        assert!(text.contains("7 pages peak"), "{text}");
        assert!(text.contains("480 tokens reused"), "{text}");
    }
}
