//! Pluggable workload generators.
//!
//! A [`WorkloadGen`] turns a base [`GenConfig`] into a deterministic request
//! stream: arrival times plus (optionally) per-request prompt/output length
//! variation.  Everything is driven by the seeded deterministic RNG of the
//! `rand` compat crate, so a workload is a pure function of its parameters —
//! the serving bench replays *identical traffic* against every strategy.

use crate::request::{Request, RequestId};
use pi_spec::GenConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator of request streams.
pub trait WorkloadGen {
    /// Short label used as a series name in figures.
    fn name(&self) -> &'static str;

    /// Generates the request stream, sorted by arrival time, with ids
    /// numbered from 0 in arrival order.
    fn generate(&self) -> Vec<Request>;
}

/// Repeats (and truncates) `base` tokens to exactly `len` tokens, so derived
/// prompts stay within whatever vocabulary the base prompt was encoded for.
fn resize_prompt(base: &[u32], len: usize) -> Vec<u32> {
    assert!(!base.is_empty(), "base prompt must not be empty");
    (0..len).map(|i| base[i % base.len()]).collect()
}

/// Inverse-CDF exponential inter-arrival gap: `-ln(1 - U) * mean`, `U` in
/// `[0, 1)` — shared by every Poisson-like arrival process here.
fn exp_gap(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean.max(0.0)
}

/// Constant-interval arrivals of one fixed request shape — the "offline
/// batch" end of the workload spectrum.
#[derive(Debug, Clone)]
pub struct SteadyWorkload {
    /// Request shape shared by every arrival.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Gap between consecutive arrivals, seconds.
    pub interarrival: f64,
}

impl WorkloadGen for SteadyWorkload {
    fn name(&self) -> &'static str {
        "steady"
    }

    fn generate(&self) -> Vec<Request> {
        (0..self.n_requests)
            .map(|i| {
                Request::new(
                    i as RequestId,
                    self.base.clone(),
                    i as f64 * self.interarrival.max(0.0),
                )
            })
            .collect()
    }
}

/// Poisson-like arrivals: inter-arrival gaps drawn from an exponential
/// distribution with the given mean, via the seeded deterministic RNG.
/// Produces the bursty traffic interactive serving actually sees.
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    /// Request shape shared by every arrival.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Mean inter-arrival gap, seconds (arrival rate = 1 / mean).
    pub mean_interarrival: f64,
    /// RNG seed; the stream is a pure function of it.
    pub seed: u64,
}

impl WorkloadGen for BurstyWorkload {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn generate(&self) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        (0..self.n_requests)
            .map(|i| {
                if i > 0 {
                    t += exp_gap(&mut rng, self.mean_interarrival);
                }
                Request::new(i as RequestId, self.base.clone(), t)
            })
            .collect()
    }
}

/// Bursty arrivals with per-request prompt and output lengths drawn
/// uniformly from inclusive ranges — the mixed-length traffic that stresses
/// scheduling fairness (short requests queued behind long ones).
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Request template; its prompt supplies the token alphabet that derived
    /// prompts cycle through.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival: f64,
    /// Inclusive range of prompt lengths.
    pub prompt_len: (usize, usize),
    /// Inclusive range of generated-token budgets.
    pub n_generate: (usize, usize),
    /// RNG seed; the stream is a pure function of it.
    pub seed: u64,
}

impl WorkloadGen for MixedWorkload {
    fn name(&self) -> &'static str {
        "mixed"
    }

    fn generate(&self) -> Vec<Request> {
        assert!(self.prompt_len.0 >= 1 && self.prompt_len.0 <= self.prompt_len.1);
        assert!(self.n_generate.0 >= 1 && self.n_generate.0 <= self.n_generate.1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        (0..self.n_requests)
            .map(|i| {
                if i > 0 {
                    t += exp_gap(&mut rng, self.mean_interarrival);
                }
                let prompt_len = rng.gen_range(self.prompt_len.0..=self.prompt_len.1);
                let n_generate = rng.gen_range(self.n_generate.0..=self.n_generate.1);
                let gen = GenConfig {
                    prompt: resize_prompt(&self.base.prompt, prompt_len),
                    n_generate,
                    ..self.base.clone()
                };
                Request::new(i as RequestId, gen, t)
            })
            .collect()
    }
}

/// Draws `len` tokens uniformly from `alphabet` — the building block for
/// seeded synthetic prompts that are distinct with overwhelming probability.
fn draw_tokens(rng: &mut StdRng, alphabet: &[u32], len: usize) -> Vec<u32> {
    assert!(!alphabet.is_empty(), "token alphabet must not be empty");
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Bursty arrivals where a configurable fraction of requests open with one
/// shared "system prompt" — the workload shape that a paged KV pool with
/// radix prefix sharing is built for.  Shared requests are the system prompt
/// followed by a per-request random suffix; unshared requests are fully
/// random prompts of the *same total length*, so any TTFT difference between
/// the two populations is attributable to prefix-cache hits rather than
/// prompt length.  Both the system prompt and every per-request draw are
/// pure functions of `seed`.
#[derive(Debug, Clone)]
pub struct SharedPrefixWorkload {
    /// Request template; its prompt supplies the token alphabet and its
    /// `n_generate`/speculation knobs are shared by every arrival.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival: f64,
    /// Fraction of requests that open with the shared system prompt
    /// (e.g. `0.9` for the 90 %-shared serving benchmark).
    pub shared_fraction: f64,
    /// Inclusive range the system-prompt length is drawn from (once per
    /// stream).
    pub prefix_len: (usize, usize),
    /// Inclusive range per-request unique suffix lengths are drawn from.
    pub suffix_len: (usize, usize),
    /// RNG seed; the stream is a pure function of it.
    pub seed: u64,
}

impl SharedPrefixWorkload {
    /// The shared system prompt every "shared" request opens with — a pure
    /// function of the seed and the base alphabet, so benches and tests can
    /// recover it without regenerating the stream.
    pub fn system_prompt(&self) -> Vec<u32> {
        assert!(self.prefix_len.0 >= 1 && self.prefix_len.0 <= self.prefix_len.1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let len = rng.gen_range(self.prefix_len.0..=self.prefix_len.1);
        draw_tokens(&mut rng, &self.base.prompt, len)
    }
}

impl WorkloadGen for SharedPrefixWorkload {
    fn name(&self) -> &'static str {
        "shared-prefix"
    }

    fn generate(&self) -> Vec<Request> {
        assert!(self.suffix_len.0 >= 1 && self.suffix_len.0 <= self.suffix_len.1);
        assert!(
            (0.0..=1.0).contains(&self.shared_fraction),
            "shared_fraction must be a probability"
        );
        let prefix = self.system_prompt();
        // Independent stream RNG so the system prompt stays stable while the
        // arrival/suffix draws consume entropy.
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x5AFE_5EED));
        let mut t = 0.0;
        (0..self.n_requests)
            .map(|i| {
                if i > 0 {
                    t += exp_gap(&mut rng, self.mean_interarrival);
                }
                let shared = rng.gen::<f64>() < self.shared_fraction;
                let suffix_len = rng.gen_range(self.suffix_len.0..=self.suffix_len.1);
                let prompt = if shared {
                    let mut p = prefix.clone();
                    p.extend(draw_tokens(&mut rng, &self.base.prompt, suffix_len));
                    p
                } else {
                    draw_tokens(&mut rng, &self.base.prompt, prefix.len() + suffix_len)
                };
                let gen = GenConfig {
                    prompt,
                    ..self.base.clone()
                };
                Request::new(i as RequestId, gen, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GenConfig {
        GenConfig::small_test(vec![1, 2, 3, 4], 8)
    }

    fn arrivals(reqs: &[Request]) -> Vec<f64> {
        reqs.iter().map(|r| r.arrival).collect()
    }

    #[test]
    fn steady_spaces_arrivals_evenly() {
        let w = SteadyWorkload {
            base: base(),
            n_requests: 4,
            interarrival: 0.5,
        };
        let reqs = w.generate();
        assert_eq!(arrivals(&reqs), vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(reqs.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert!(reqs.iter().all(|r| r.gen.prompt == base().prompt));
    }

    #[test]
    fn bursty_is_deterministic_per_seed_and_monotone() {
        let w = |seed| BurstyWorkload {
            base: base(),
            n_requests: 16,
            mean_interarrival: 0.25,
            seed,
        };
        let a = w(7).generate();
        let b = w(7).generate();
        assert_eq!(arrivals(&a), arrivals(&b));
        assert_ne!(arrivals(&a), arrivals(&w(8).generate()));
        assert!(a.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert_eq!(a[0].arrival, 0.0);
        // Mean gap should be in the ballpark of the configured mean.
        let mean_gap = a.last().unwrap().arrival / (a.len() - 1) as f64;
        assert!(mean_gap > 0.05 && mean_gap < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn mixed_draws_lengths_within_ranges() {
        let w = MixedWorkload {
            base: base(),
            n_requests: 24,
            mean_interarrival: 0.1,
            prompt_len: (2, 9),
            n_generate: (4, 12),
            seed: 3,
        };
        let reqs = w.generate();
        assert!(
            reqs.iter()
                .all(|r| (2..=9).contains(&r.gen.prompt.len())
                    && (4..=12).contains(&r.gen.n_generate))
        );
        // Lengths genuinely vary.
        assert!(reqs
            .iter()
            .any(|r| r.gen.prompt.len() != reqs[0].gen.prompt.len()));
        // Derived prompts only use tokens from the base alphabet.
        assert!(reqs
            .iter()
            .all(|r| r.gen.prompt.iter().all(|t| base().prompt.contains(t))));
    }

    #[test]
    fn shared_prefix_marks_the_configured_fraction() {
        let w = SharedPrefixWorkload {
            base: base(),
            n_requests: 40,
            mean_interarrival: 0.05,
            shared_fraction: 0.9,
            prefix_len: (24, 48),
            suffix_len: (2, 8),
            seed: 11,
        };
        let prefix = w.system_prompt();
        assert!((24..=48).contains(&prefix.len()));
        let reqs = w.generate();
        assert_eq!(reqs.len(), 40);
        let shared = reqs
            .iter()
            .filter(|r| r.gen.prompt.starts_with(&prefix))
            .count();
        // ~90 % share the system prompt; the rest are fully random prompts
        // of the same total length.
        assert!(
            (30..40).contains(&shared),
            "expected roughly 36 shared, got {shared}"
        );
        assert!(reqs.iter().all(|r| {
            let extra = r.gen.prompt.len() - prefix.len();
            (2..=8).contains(&extra)
        }));
        // Deterministic per seed, distinct across seeds.
        let again = w.generate();
        assert!(reqs
            .iter()
            .zip(&again)
            .all(|(a, b)| a.gen.prompt == b.gen.prompt && a.arrival == b.arrival));
        let other = SharedPrefixWorkload {
            seed: 12,
            ..w.clone()
        };
        assert_ne!(other.system_prompt(), prefix);
    }

    #[test]
    fn resize_prompt_cycles_base_tokens() {
        assert_eq!(resize_prompt(&[5, 6], 5), vec![5, 6, 5, 6, 5]);
        assert_eq!(resize_prompt(&[5, 6, 7], 2), vec![5, 6]);
    }
}
