//! Pluggable workload generators.
//!
//! A [`WorkloadGen`] turns a base [`GenConfig`] into a deterministic request
//! stream: arrival times plus (optionally) per-request prompt/output length
//! variation.  Everything is driven by the seeded deterministic RNG of the
//! `rand` compat crate, so a workload is a pure function of its parameters —
//! the serving bench replays *identical traffic* against every strategy.

use crate::request::{Request, RequestId};
use pi_spec::GenConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator of request streams.
pub trait WorkloadGen {
    /// Short label used as a series name in figures.
    fn name(&self) -> &'static str;

    /// Generates the request stream, sorted by arrival time, with ids
    /// numbered from 0 in arrival order.
    fn generate(&self) -> Vec<Request>;
}

/// Repeats (and truncates) `base` tokens to exactly `len` tokens, so derived
/// prompts stay within whatever vocabulary the base prompt was encoded for.
fn resize_prompt(base: &[u32], len: usize) -> Vec<u32> {
    assert!(!base.is_empty(), "base prompt must not be empty");
    (0..len).map(|i| base[i % base.len()]).collect()
}

/// Inverse-CDF exponential inter-arrival gap: `-ln(1 - U) * mean`, `U` in
/// `[0, 1)` — shared by every Poisson-like arrival process here.
fn exp_gap(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean.max(0.0)
}

/// Constant-interval arrivals of one fixed request shape — the "offline
/// batch" end of the workload spectrum.
#[derive(Debug, Clone)]
pub struct SteadyWorkload {
    /// Request shape shared by every arrival.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Gap between consecutive arrivals, seconds.
    pub interarrival: f64,
}

impl WorkloadGen for SteadyWorkload {
    fn name(&self) -> &'static str {
        "steady"
    }

    fn generate(&self) -> Vec<Request> {
        (0..self.n_requests)
            .map(|i| {
                Request::new(
                    i as RequestId,
                    self.base.clone(),
                    i as f64 * self.interarrival.max(0.0),
                )
            })
            .collect()
    }
}

/// Poisson-like arrivals: inter-arrival gaps drawn from an exponential
/// distribution with the given mean, via the seeded deterministic RNG.
/// Produces the bursty traffic interactive serving actually sees.
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    /// Request shape shared by every arrival.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Mean inter-arrival gap, seconds (arrival rate = 1 / mean).
    pub mean_interarrival: f64,
    /// RNG seed; the stream is a pure function of it.
    pub seed: u64,
}

impl WorkloadGen for BurstyWorkload {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn generate(&self) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        (0..self.n_requests)
            .map(|i| {
                if i > 0 {
                    t += exp_gap(&mut rng, self.mean_interarrival);
                }
                Request::new(i as RequestId, self.base.clone(), t)
            })
            .collect()
    }
}

/// Bursty arrivals with per-request prompt and output lengths drawn
/// uniformly from inclusive ranges — the mixed-length traffic that stresses
/// scheduling fairness (short requests queued behind long ones).
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// Request template; its prompt supplies the token alphabet that derived
    /// prompts cycle through.
    pub base: GenConfig,
    /// Number of requests.
    pub n_requests: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_interarrival: f64,
    /// Inclusive range of prompt lengths.
    pub prompt_len: (usize, usize),
    /// Inclusive range of generated-token budgets.
    pub n_generate: (usize, usize),
    /// RNG seed; the stream is a pure function of it.
    pub seed: u64,
}

impl WorkloadGen for MixedWorkload {
    fn name(&self) -> &'static str {
        "mixed"
    }

    fn generate(&self) -> Vec<Request> {
        assert!(self.prompt_len.0 >= 1 && self.prompt_len.0 <= self.prompt_len.1);
        assert!(self.n_generate.0 >= 1 && self.n_generate.0 <= self.n_generate.1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        (0..self.n_requests)
            .map(|i| {
                if i > 0 {
                    t += exp_gap(&mut rng, self.mean_interarrival);
                }
                let prompt_len = rng.gen_range(self.prompt_len.0..=self.prompt_len.1);
                let n_generate = rng.gen_range(self.n_generate.0..=self.n_generate.1);
                let gen = GenConfig {
                    prompt: resize_prompt(&self.base.prompt, prompt_len),
                    n_generate,
                    ..self.base.clone()
                };
                Request::new(i as RequestId, gen, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GenConfig {
        GenConfig::small_test(vec![1, 2, 3, 4], 8)
    }

    fn arrivals(reqs: &[Request]) -> Vec<f64> {
        reqs.iter().map(|r| r.arrival).collect()
    }

    #[test]
    fn steady_spaces_arrivals_evenly() {
        let w = SteadyWorkload {
            base: base(),
            n_requests: 4,
            interarrival: 0.5,
        };
        let reqs = w.generate();
        assert_eq!(arrivals(&reqs), vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(reqs.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert!(reqs.iter().all(|r| r.gen.prompt == base().prompt));
    }

    #[test]
    fn bursty_is_deterministic_per_seed_and_monotone() {
        let w = |seed| BurstyWorkload {
            base: base(),
            n_requests: 16,
            mean_interarrival: 0.25,
            seed,
        };
        let a = w(7).generate();
        let b = w(7).generate();
        assert_eq!(arrivals(&a), arrivals(&b));
        assert_ne!(arrivals(&a), arrivals(&w(8).generate()));
        assert!(a.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert_eq!(a[0].arrival, 0.0);
        // Mean gap should be in the ballpark of the configured mean.
        let mean_gap = a.last().unwrap().arrival / (a.len() - 1) as f64;
        assert!(mean_gap > 0.05 && mean_gap < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn mixed_draws_lengths_within_ranges() {
        let w = MixedWorkload {
            base: base(),
            n_requests: 24,
            mean_interarrival: 0.1,
            prompt_len: (2, 9),
            n_generate: (4, 12),
            seed: 3,
        };
        let reqs = w.generate();
        assert!(
            reqs.iter()
                .all(|r| (2..=9).contains(&r.gen.prompt.len())
                    && (4..=12).contains(&r.gen.n_generate))
        );
        // Lengths genuinely vary.
        assert!(reqs
            .iter()
            .any(|r| r.gen.prompt.len() != reqs[0].gen.prompt.len()));
        // Derived prompts only use tokens from the base alphabet.
        assert!(reqs
            .iter()
            .all(|r| r.gen.prompt.iter().all(|t| base().prompt.contains(t))));
    }

    #[test]
    fn resize_prompt_cycles_base_tokens() {
        assert_eq!(resize_prompt(&[5, 6], 5), vec![5, 6, 5, 6, 5]);
        assert_eq!(resize_prompt(&[5, 6, 7], 2), vec![5, 6]);
    }
}
