//! Deterministic continuous-batching admission schedule.
//!
//! The scheduler interleaves a request stream over a bounded in-flight
//! window: at most `max_in_flight` requests run concurrently, and the moment
//! one finishes its slot is refilled from the waiting queue (continuous
//! batching at request granularity — no gang-scheduled batch barriers).
//! Admission is FIFO: among waiting requests the highest priority goes
//! first, ties broken by arrival time and then request id, so equal-priority
//! traffic can never overtake and the wait of any request is bounded by the
//! service demand ahead of it.
//!
//! [`plan`] is a pure function from (arrivals, priorities, service
//! durations) to per-request start/finish times — the same deterministic
//! event loop whether service durations came from the discrete-event
//! simulator or from wall-clock measurement.

use crate::request::Request;

/// Admission-policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum number of requests running concurrently (window size).
    pub max_in_flight: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self { max_in_flight: 8 }
    }
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// When the request entered the in-flight window.
    pub started: f64,
    /// When its service completed.
    pub finished: f64,
}

/// Indices of `requests` in admission-stream order: arrival time, then id.
///
/// This is the one ordering both halves of the serving pipeline must agree
/// on — [`plan`] walks it as the arrival stream, and the server's execution
/// pool pulls requests in it — so it lives here exactly once.
pub fn admission_order(requests: &[Request]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival
            .partial_cmp(&requests[b].arrival)
            .expect("arrival times must be comparable")
            .then(requests[a].id.cmp(&requests[b].id))
    });
    order
}

/// Index of the next request to admit from `ready`: highest priority first,
/// then earliest arrival, then lowest id.
fn best_ready(ready: &[usize], requests: &[Request]) -> usize {
    let mut best = 0;
    for (pos, &idx) in ready.iter().enumerate().skip(1) {
        let (b, c) = (&requests[ready[best]], &requests[idx]);
        let better = c.priority > b.priority
            || (c.priority == b.priority
                && (c.arrival < b.arrival || (c.arrival == b.arrival && c.id < b.id)));
        if better {
            best = pos;
        }
    }
    best
}

/// Computes the admission timeline.
///
/// `services[i]` is the service duration of `requests[i]` on the service
/// clock; the returned slots are parallel to `requests`.  The event loop is
/// conservative (it always advances to the earliest finish or arrival), so
/// the timeline is bit-reproducible for identical inputs.
pub fn plan(requests: &[Request], services: &[f64], config: SchedulerConfig) -> Vec<Slot> {
    assert_eq!(
        requests.len(),
        services.len(),
        "one service duration per request"
    );
    assert!(config.max_in_flight >= 1, "window must admit at least one");
    let n = requests.len();
    let order = admission_order(requests);

    let mut slots = vec![
        Slot {
            started: 0.0,
            finished: 0.0,
        };
        n
    ];
    let mut ready: Vec<usize> = Vec::new();
    let mut in_flight: Vec<f64> = Vec::new(); // finish times of running requests
    let mut next_arrival = 0usize; // cursor into `order`
    let mut started = 0usize;
    let mut t = 0.0f64;

    while started < n {
        // Retire finished runs, freeing window slots.
        in_flight.retain(|&f| f > t);
        // Move arrived requests into the waiting queue.
        while next_arrival < n && requests[order[next_arrival]].arrival <= t {
            ready.push(order[next_arrival]);
            next_arrival += 1;
        }
        // Fill every free slot from the queue.
        while in_flight.len() < config.max_in_flight && !ready.is_empty() {
            let idx = ready.remove(best_ready(&ready, requests));
            let finished = t + services[idx].max(0.0);
            slots[idx] = Slot {
                started: t,
                finished,
            };
            in_flight.push(finished);
            started += 1;
        }
        if started == n {
            break;
        }
        // Advance to the next event: the earliest finish or the next arrival.
        let next_finish = in_flight.iter().copied().fold(f64::INFINITY, f64::min);
        let next_arr = if next_arrival < n {
            requests[order[next_arrival]].arrival
        } else {
            f64::INFINITY
        };
        let next = next_finish.min(next_arr).max(t);
        assert!(
            next.is_finite(),
            "scheduler stalled with {} of {n} requests started",
            started
        );
        t = next;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_spec::GenConfig;

    fn req(id: u64, arrival: f64, priority: u8) -> Request {
        Request::new(id, GenConfig::small_test(vec![1], 1), arrival).with_priority(priority)
    }

    #[test]
    fn window_of_one_serialises_fifo() {
        let requests = vec![req(0, 0.0, 0), req(1, 0.1, 0), req(2, 0.2, 0)];
        let slots = plan(
            &requests,
            &[1.0, 1.0, 1.0],
            SchedulerConfig { max_in_flight: 1 },
        );
        assert_eq!(slots[0].started, 0.0);
        assert_eq!(slots[0].finished, 1.0);
        assert_eq!(slots[1].started, 1.0);
        assert_eq!(slots[2].started, 2.0);
    }

    #[test]
    fn wide_window_starts_everything_at_arrival() {
        let requests = vec![req(0, 0.0, 0), req(1, 0.25, 0), req(2, 0.5, 0)];
        let slots = plan(
            &requests,
            &[2.0, 2.0, 2.0],
            SchedulerConfig { max_in_flight: 8 },
        );
        for (slot, r) in slots.iter().zip(&requests) {
            assert_eq!(slot.started, r.arrival);
            assert_eq!(slot.finished, r.arrival + 2.0);
        }
    }

    #[test]
    fn concurrency_never_exceeds_window() {
        let requests: Vec<Request> = (0..10).map(|i| req(i, i as f64 * 0.01, 0)).collect();
        let services: Vec<f64> = (0..10).map(|i| 0.5 + 0.1 * i as f64).collect();
        let window = 3;
        let slots = plan(
            &requests,
            &services,
            SchedulerConfig {
                max_in_flight: window,
            },
        );
        // At every start instant, count overlapping [started, finished) spans.
        for probe in &slots {
            let overlapping = slots
                .iter()
                .filter(|s| s.started <= probe.started && probe.started < s.finished)
                .count();
            assert!(overlapping <= window, "{overlapping} > window {window}");
        }
    }

    #[test]
    fn higher_priority_jumps_the_waiting_queue_only() {
        // Window 1: r0 occupies the server; r1 (low) and r2 (high) wait.
        let requests = vec![req(0, 0.0, 0), req(1, 0.1, 0), req(2, 0.2, 5)];
        let slots = plan(
            &requests,
            &[1.0, 1.0, 1.0],
            SchedulerConfig { max_in_flight: 1 },
        );
        // The high-priority request is admitted before the earlier low one…
        assert_eq!(slots[2].started, 1.0);
        assert_eq!(slots[1].started, 2.0);
        // …but never preempts the one already running.
        assert_eq!(slots[0].finished, 1.0);
    }

    #[test]
    fn equal_priority_is_non_overtaking() {
        let requests: Vec<Request> = (0..8).map(|i| req(i, i as f64 * 0.05, 0)).collect();
        let services = [0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4];
        let slots = plan(&requests, &services, SchedulerConfig { max_in_flight: 2 });
        for w in slots.windows(2) {
            assert!(w[0].started <= w[1].started, "FIFO overtaken: {slots:?}");
        }
    }

    #[test]
    fn zero_service_requests_terminate() {
        let requests = vec![req(0, 0.0, 0), req(1, 0.0, 0), req(2, 0.0, 0)];
        let slots = plan(
            &requests,
            &[0.0, 0.0, 0.0],
            SchedulerConfig { max_in_flight: 1 },
        );
        assert!(slots.iter().all(|s| s.started == 0.0 && s.finished == 0.0));
    }

    #[test]
    #[should_panic(expected = "window must admit")]
    fn zero_window_is_rejected() {
        let _ = plan(
            &[req(0, 0.0, 0)],
            &[1.0],
            SchedulerConfig { max_in_flight: 0 },
        );
    }
}
