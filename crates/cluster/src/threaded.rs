//! Threaded in-process cluster driver.
//!
//! Each rank runs on its own OS thread and exchanges messages over unbounded
//! crossbeam channels, which gives the buffered, non-blocking,
//! order-preserving point-to-point semantics the paper gets from MPI
//! buffered sends.  Compute inside the behaviors is *real* (tiny models from
//! `pi-model`), so this driver is used for functional end-to-end tests
//! (output equivalence across inference strategies) and for the runnable
//! examples.

use crate::fault::{FaultInjector, FaultPlan};
use crate::stats::{ClusterStats, NodeStats};
use crate::{NodeBehavior, NodeCtx, Rank, SimTime, Tag, WireMessage};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use pi_trace::{Clock, ClockDomain, EventKind, MonotonicClock, Trace, TraceBuffer, TraceConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Result of a threaded run.
pub struct ThreadedOutcome<M: WireMessage> {
    /// The rank behaviors after the run, in rank order.
    pub behaviors: Vec<Box<dyn NodeBehavior<M>>>,
    /// Wall-clock statistics.
    pub stats: ClusterStats,
    /// `true` if every rank finished before the timeout.
    pub completed: bool,
    /// The recorded event trace, when the driver was built `with_trace`
    /// (and the `trace` feature is compiled in).  Timestamps are monotonic
    /// wall-clock seconds since the run started.
    pub trace: Option<Trace>,
}

struct Envelope<M> {
    src: Rank,
    tag: Tag,
    msg: M,
}

/// Per-rank mailboxes: one sender handle per destination, one receiver each.
type Channels<M> = (Vec<Sender<Envelope<M>>>, Vec<Receiver<Envelope<M>>>);

struct ThreadedCtx<M> {
    rank: Rank,
    world: usize,
    clock: Arc<dyn Clock>,
    /// The run's epoch on `clock`; `now()` is relative to it.
    t0: f64,
    senders: Vec<Sender<Envelope<M>>>,
    stats: NodeStats,
    /// Shared fault injector (best-effort subset: drop/delay/duplicate on
    /// the send path), present iff the driver was built `with_faults`.
    injector: Option<Arc<Mutex<FaultInjector>>>,
    /// This rank's private event ring — per-thread by construction, so the
    /// hot path takes no locks.
    buf: Option<TraceBuffer>,
}

impl<M: WireMessage> NodeCtx<M> for ThreadedCtx<M> {
    fn rank(&self) -> Rank {
        self.rank
    }
    fn world_size(&self) -> usize {
        self.world
    }
    fn now(&self) -> SimTime {
        (self.clock.now() - self.t0).max(0.0)
    }
    fn send(&mut self, dst: Rank, tag: Tag, msg: M) {
        let bytes = msg.wire_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes;
        if msg.is_draft() {
            self.stats.draft_messages_sent += 1;
            self.stats.draft_bytes_sent += bytes;
        }
        if self.trace_enabled() {
            self.trace(EventKind::WireSend {
                dst: dst as u32,
                tag,
                bytes,
                draft: msg.is_draft(),
            });
        }
        match self.injector.as_ref() {
            None => {
                // A send to a rank that already exited is silently dropped,
                // matching buffered-send semantics after a receiver has
                // finalised.
                let _ = self.senders[dst].send(Envelope {
                    src: self.rank,
                    tag,
                    msg,
                });
            }
            Some(inj) => {
                let now = self.now();
                let fate = inj.lock().unwrap().on_send(self.rank, dst, now);
                self.stats.faults_injected += fate.faults.len() as u64;
                if self.trace_enabled() {
                    for kind in &fate.faults {
                        self.trace(*kind);
                    }
                }
                for &(extra, _overtakes) in &fate.copies {
                    let env = Envelope {
                        src: self.rank,
                        tag,
                        msg: msg.clone(),
                    };
                    if extra > 0.0 {
                        // Injected latency: deliver from a helper thread so
                        // the sender keeps its buffered-send semantics.
                        let sender = self.senders[dst].clone();
                        let delay = Duration::from_secs_f64(extra);
                        std::thread::spawn(move || {
                            std::thread::sleep(delay);
                            let _ = sender.send(env);
                        });
                    } else {
                        let _ = self.senders[dst].send(env);
                    }
                }
            }
        }
    }
    fn elapse(&mut self, seconds: SimTime) {
        // Real compute already took real time; only record it.
        let s = seconds.max(0.0);
        self.stats.busy_time += s;
        if s > 0.0 && self.trace_enabled() {
            self.trace(EventKind::Compute { dur: s });
        }
    }
    fn record_cancellation_saved(&mut self, n: u64) {
        self.stats.cancellations_saved += n;
    }
    fn record_draft_timeout(&mut self) {
        self.stats.draft_timeouts += 1;
    }
    fn record_draft_retry(&mut self) {
        self.stats.draft_retries += 1;
    }
    fn record_failover(&mut self) {
        self.stats.failovers += 1;
    }
    fn record_kv_pages(&mut self, allocated: u64, share_hits: u64, cows: u64, evictions: u64) {
        self.stats.kv_pages_allocated += allocated;
        self.stats.kv_page_share_hits += share_hits;
        self.stats.kv_page_cows += cows;
        self.stats.kv_page_evictions += evictions;
    }
    fn record_cohort_step(&mut self, width: u64, rows: u64) {
        self.stats.cohort_steps += 1;
        self.stats.cohort_width_sum += width;
        self.stats.batched_rows += rows;
    }
    fn trace_enabled(&self) -> bool {
        cfg!(feature = "trace") && self.buf.is_some()
    }
    fn trace(&mut self, kind: EventKind) {
        #[cfg(feature = "trace")]
        if self.buf.is_some() {
            let ts = (self.clock.now() - self.t0).max(0.0);
            if let Some(buf) = self.buf.as_mut() {
                buf.push(ts, kind);
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = kind;
    }
}

impl<M: WireMessage> ThreadedCtx<M> {
    /// Closes an open blocked-wait span, if one is being tracked.
    fn close_blocked(&mut self, blocked_since: &mut Option<f64>) {
        if let Some(since) = blocked_since.take() {
            let end = self.now();
            if end > since {
                self.trace(EventKind::Blocked { dur: end - since });
            }
        }
    }
}

/// Driver that runs each rank on a dedicated OS thread.
pub struct ThreadedDriver {
    timeout: Duration,
    clock: Arc<dyn Clock>,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
}

impl Default for ThreadedDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadedDriver {
    /// Creates a driver with a 120 s safety timeout and a monotonic
    /// wall-time clock.
    pub fn new() -> Self {
        Self {
            timeout: Duration::from_secs(120),
            clock: Arc::new(MonotonicClock::new()),
            trace: None,
            faults: None,
        }
    }

    /// Overrides the safety timeout after which unfinished ranks give up.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Injects the clock behind `NodeCtx::now` and every trace timestamp
    /// (tests inject a [`pi_trace::ManualClock`] for determinism).  The
    /// run's epoch is the clock's value when `run` is called.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a structured event recorder: every rank gets a bounded
    /// per-thread ring and the outcome carries the merged [`Trace`].
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Attaches a chaos schedule ([`FaultPlan`]), best-effort: the per-link
    /// message faults (drop/delay/duplicate) are applied on the send path;
    /// rank pauses, kills and reordering need the virtual-time control only
    /// the simulator has and are ignored here.  Fault *decisions* are seeded
    /// and deterministic, but wall-clock thread interleaving still varies
    /// between runs — use [`SimDriver`](crate::sim::SimDriver) for
    /// bit-identical chaos replays.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the behaviors, one thread per rank, until all finish or the
    /// timeout expires.
    pub fn run<M: WireMessage>(
        &self,
        behaviors: Vec<Box<dyn NodeBehavior<M>>>,
    ) -> ThreadedOutcome<M> {
        let n = behaviors.len();
        let t0 = self.clock.now();
        let (senders, receivers): Channels<M> = (0..n).map(|_| unbounded()).unzip();

        let timeout = self.timeout.as_secs_f64();
        let trace_config = if cfg!(feature = "trace") {
            self.trace
        } else {
            None
        };
        let injector: Option<Arc<Mutex<FaultInjector>>> = self
            .faults
            .as_ref()
            .filter(|p| !p.is_empty())
            .map(|p| Arc::new(Mutex::new(FaultInjector::new(p.clone(), n))));
        let handles: Vec<_> = behaviors
            .into_iter()
            .enumerate()
            .zip(receivers)
            .map(|((rank, mut behavior), rx)| {
                let senders = senders.clone();
                let clock = Arc::clone(&self.clock);
                let injector = injector.clone();
                std::thread::spawn(move || {
                    let mut ctx = ThreadedCtx {
                        rank,
                        world: n,
                        clock,
                        t0,
                        senders,
                        stats: NodeStats::default(),
                        injector,
                        buf: trace_config
                            .map(|c| TraceBuffer::new(rank as u32, c.capacity_per_rank)),
                    };
                    behavior.on_start(&mut ctx);
                    // Start of the wait currently being tracked for a
                    // `Blocked` span (tracing only).
                    let mut blocked_since: Option<f64> = None;
                    let completed = loop {
                        if behavior.is_finished() {
                            break true;
                        }
                        if ctx.now() > timeout {
                            break false;
                        }
                        match rx.try_recv() {
                            Ok(env) => {
                                ctx.close_blocked(&mut blocked_since);
                                if ctx.trace_enabled() {
                                    ctx.trace(EventKind::WireRecv {
                                        src: env.src as u32,
                                        tag: env.tag,
                                        bytes: env.msg.wire_bytes(),
                                    });
                                }
                                ctx.stats.messages_received += 1;
                                behavior.on_message(env.src, env.tag, env.msg, &mut ctx);
                            }
                            Err(TryRecvError::Empty) => {
                                if behavior.on_idle(&mut ctx) {
                                    ctx.close_blocked(&mut blocked_since);
                                    ctx.stats.idle_work += 1;
                                    continue;
                                }
                                if ctx.trace_enabled() && blocked_since.is_none() {
                                    blocked_since = Some(ctx.now());
                                }
                                // Block briefly for the next message; wake up
                                // periodically to re-check finish/timeout.
                                if let Ok(env) = rx.recv_timeout(Duration::from_millis(1)) {
                                    ctx.close_blocked(&mut blocked_since);
                                    if ctx.trace_enabled() {
                                        ctx.trace(EventKind::WireRecv {
                                            src: env.src as u32,
                                            tag: env.tag,
                                            bytes: env.msg.wire_bytes(),
                                        });
                                    }
                                    ctx.stats.messages_received += 1;
                                    behavior.on_message(env.src, env.tag, env.msg, &mut ctx);
                                }
                            }
                            Err(TryRecvError::Disconnected) => break behavior.is_finished(),
                        }
                    };
                    ctx.close_blocked(&mut blocked_since);
                    if ctx.trace_enabled() {
                        ctx.trace(EventKind::RankFinished);
                    }
                    (behavior, ctx.stats, completed, ctx.buf)
                })
            })
            .collect();
        // Keep our copies of the senders alive until all threads are done so
        // no thread observes a spurious disconnect; drop after joining.
        let mut out_behaviors = Vec::with_capacity(n);
        let mut stats = ClusterStats::new(n);
        let mut completed = true;
        let mut bufs = Vec::with_capacity(n);
        for (r, h) in handles.into_iter().enumerate() {
            let (behavior, node_stats, node_completed, buf) =
                h.join().expect("rank thread panicked");
            out_behaviors.push(behavior);
            stats.nodes[r] = node_stats;
            completed &= node_completed;
            if let Some(buf) = buf {
                bufs.push(buf);
            }
        }
        drop(senders);
        stats.total_time = (self.clock.now() - t0).max(0.0);
        let trace = (trace_config.is_some() && bufs.len() == n)
            .then(|| Trace::assemble(bufs, ClockDomain::Monotonic));
        ThreadedOutcome {
            behaviors: out_behaviors,
            stats,
            completed,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone)]
    struct Num(u64);
    impl WireMessage for Num {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    /// Rank 0 sends numbers 1..=count around a ring; every rank adds 1.
    /// When the number returns to rank 0 it checks the sum and finishes,
    /// broadcasting a stop message (u64::MAX).
    struct RingAdder {
        rank: Rank,
        n: usize,
        count: u64,
        received: Vec<u64>,
        finished: bool,
    }

    impl NodeBehavior<Num> for RingAdder {
        fn on_start(&mut self, ctx: &mut dyn NodeCtx<Num>) {
            if self.rank == 0 {
                ctx.send(1 % self.n, 7, Num(0));
            }
        }
        fn on_message(&mut self, _src: Rank, _tag: Tag, msg: Num, ctx: &mut dyn NodeCtx<Num>) {
            if msg.0 == u64::MAX {
                self.finished = true;
                return;
            }
            ctx.elapse(0.0001);
            if self.rank == 0 {
                self.received.push(msg.0);
                if self.received.len() as u64 == self.count {
                    self.finished = true;
                    for r in 1..self.n {
                        ctx.send(r, 7, Num(u64::MAX));
                    }
                } else {
                    ctx.send(1 % self.n, 7, Num(0));
                }
            } else {
                ctx.send((self.rank + 1) % self.n, 7, Num(msg.0 + 1));
            }
        }
        fn is_finished(&self) -> bool {
            self.finished
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn ring(n: usize, count: u64) -> Vec<Box<dyn NodeBehavior<Num>>> {
        (0..n)
            .map(|r| {
                Box::new(RingAdder {
                    rank: r,
                    n,
                    count,
                    received: Vec::new(),
                    finished: false,
                }) as Box<dyn NodeBehavior<Num>>
            })
            .collect()
    }

    #[test]
    fn ring_of_four_completes_with_correct_sums() {
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .run(ring(4, 5));
        assert!(out.completed);
        let head = out.behaviors[0]
            .as_any()
            .downcast_ref::<RingAdder>()
            .unwrap();
        // Each lap adds 1 at ranks 1, 2, 3 → value 3 back at rank 0.
        assert_eq!(head.received, vec![3, 3, 3, 3, 3]);
        assert!(out.stats.total_time > 0.0);
        assert_eq!(out.stats.node(0).messages_sent as usize, 5 + 3);
    }

    #[test]
    fn single_rank_world_finishes_immediately() {
        struct Solo {
            finished: bool,
        }
        impl NodeBehavior<Num> for Solo {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx<Num>) {
                ctx.elapse(0.001);
                self.finished = true;
            }
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {}
            fn is_finished(&self) -> bool {
                self.finished
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = ThreadedDriver::new().run(vec![
            Box::new(Solo { finished: false }) as Box<dyn NodeBehavior<Num>>
        ]);
        assert!(out.completed);
        assert!((out.stats.node(0).busy_time - 0.001).abs() < 1e-9);
    }

    #[test]
    fn timeout_reports_incomplete() {
        struct Never;
        impl NodeBehavior<Num> for Never {
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {}
            fn is_finished(&self) -> bool {
                false
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_millis(50))
            .run(vec![Box::new(Never) as Box<dyn NodeBehavior<Num>>]);
        assert!(!out.completed);
    }

    #[test]
    fn idle_callbacks_run_when_no_messages() {
        struct IdleCounter {
            left: u32,
            finished: bool,
        }
        impl NodeBehavior<Num> for IdleCounter {
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {}
            fn on_idle(&mut self, ctx: &mut dyn NodeCtx<Num>) -> bool {
                if self.left == 0 {
                    self.finished = true;
                    return false;
                }
                self.left -= 1;
                ctx.elapse(0.0);
                true
            }
            fn is_finished(&self) -> bool {
                self.finished
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = ThreadedDriver::new().run(vec![Box::new(IdleCounter {
            left: 10,
            finished: false,
        }) as Box<dyn NodeBehavior<Num>>]);
        assert!(out.completed);
        assert_eq!(out.stats.node(0).idle_work, 10);
    }

    #[test]
    fn per_link_fifo_order_is_preserved() {
        // Rank 0 sends 100 numbered messages to rank 1, which checks order.
        struct Blast {
            done: bool,
        }
        struct Checker {
            expected: u64,
            ok: bool,
            finished: bool,
        }
        impl NodeBehavior<Num> for Blast {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx<Num>) {
                for i in 0..100 {
                    ctx.send(1, 0, Num(i));
                }
                self.done = true;
            }
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {}
            fn is_finished(&self) -> bool {
                self.done
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        impl NodeBehavior<Num> for Checker {
            fn on_message(&mut self, _: Rank, _: Tag, msg: Num, _: &mut dyn NodeCtx<Num>) {
                if msg.0 != self.expected {
                    self.ok = false;
                }
                self.expected += 1;
                if self.expected == 100 {
                    self.finished = true;
                }
            }
            fn is_finished(&self) -> bool {
                self.finished
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .run(vec![
                Box::new(Blast { done: false }) as Box<dyn NodeBehavior<Num>>,
                Box::new(Checker {
                    expected: 0,
                    ok: true,
                    finished: false,
                }) as Box<dyn NodeBehavior<Num>>,
            ]);
        assert!(out.completed);
        let checker = out.behaviors[1].as_any().downcast_ref::<Checker>().unwrap();
        assert!(checker.ok, "messages were reordered");
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .run(ring(2, 2));
        assert!(out.completed);
        assert!(out.trace.is_none());
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn traced_run_records_wire_events_in_wall_time() {
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .with_trace(TraceConfig::default())
            .run(ring(3, 4));
        assert!(out.completed);
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.n_ranks(), 3);
        assert_eq!(trace.domain(), ClockDomain::Monotonic);
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WireSend { .. }))
            .count();
        let recvs = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WireRecv { .. }))
            .count();
        assert_eq!(sends as u64, out.stats.total_messages());
        // Stop messages may still be in flight when a rank exits, so receives
        // can undercount sends — but every *delivered* message is recorded.
        assert_eq!(
            recvs as u64,
            (0..3).map(|r| out.stats.node(r).messages_received).sum()
        );
        let fins = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RankFinished))
            .count();
        assert_eq!(fins, 3);
        // Timestamps are relative to the run epoch and non-negative.
        assert!(trace.events().iter().all(|e| e.ts >= 0.0));
        // Compute spans mirror `elapse` charges.
        let compute: f64 = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Compute { dur } => Some(dur),
                _ => None,
            })
            .sum();
        let busy: f64 = (0..3).map(|r| out.stats.node(r).busy_time).sum();
        assert!((compute - busy).abs() < 1e-9, "{compute} vs {busy}");
    }

    #[test]
    fn fault_plan_duplicates_and_drops_on_the_send_path() {
        use crate::fault::{FaultPlan, LinkFaults};

        // Rank 0 sends one message to rank 1 with a 100 % duplicate fault;
        // rank 1 finishes only after receiving both copies.
        struct Once {
            done: bool,
        }
        struct Count {
            got: u32,
        }
        impl NodeBehavior<Num> for Once {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx<Num>) {
                ctx.send(1, 0, Num(7));
                self.done = true;
            }
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {}
            fn is_finished(&self) -> bool {
                self.done
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        impl NodeBehavior<Num> for Count {
            fn on_message(&mut self, _: Rank, _: Tag, _: Num, _: &mut dyn NodeCtx<Num>) {
                self.got += 1;
            }
            fn is_finished(&self) -> bool {
                self.got >= 2
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let plan = FaultPlan::seeded(8).on_link(0, 1, LinkFaults::default().and_duplicate(1.0));
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .with_faults(plan)
            .run(vec![
                Box::new(Once { done: false }) as Box<dyn NodeBehavior<Num>>,
                Box::new(Count { got: 0 }) as Box<dyn NodeBehavior<Num>>,
            ]);
        assert!(out.completed);
        assert_eq!(out.stats.node(0).messages_sent, 1);
        assert_eq!(out.stats.node(1).messages_received, 2);
        assert_eq!(out.stats.node(0).faults_injected, 1);

        // A dead link (100 % drop) starves the receiver: the run times out.
        let plan = FaultPlan::seeded(8).on_link(0, 1, LinkFaults::drop_all());
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_millis(100))
            .with_faults(plan)
            .run(vec![
                Box::new(Once { done: false }) as Box<dyn NodeBehavior<Num>>,
                Box::new(Count { got: 0 }) as Box<dyn NodeBehavior<Num>>,
            ]);
        assert!(!out.completed);
        assert_eq!(out.stats.node(1).messages_received, 0);
        assert_eq!(out.stats.node(0).faults_injected, 1);
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn manual_clock_injection_stamps_virtual_times() {
        use pi_trace::ManualClock;
        use std::sync::Arc;

        // With a ManualClock that never advances, every event lands at t = 0
        // and total_time is exactly 0 — proving the driver reads the injected
        // clock rather than `Instant::now()`.
        let clock = Arc::new(ManualClock::new(5.0));
        let out = ThreadedDriver::new()
            .with_timeout(Duration::from_secs(20))
            .with_clock(clock)
            .with_trace(TraceConfig::default())
            .run(ring(2, 2));
        assert!(out.completed);
        assert_eq!(out.stats.total_time, 0.0);
        let trace = out.trace.unwrap();
        assert!(!trace.events().is_empty());
        assert!(trace.events().iter().all(|e| e.ts == 0.0));
    }
}
