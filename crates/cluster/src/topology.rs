//! Cluster interconnect topology.
//!
//! A [`Topology`] tells the discrete-event simulator how long a message of a
//! given size takes between two ranks.  The presets correspond to the
//! interconnects of the paper's testbeds (Table II and Table IV): Gigabit
//! Ethernet for clusters A and B, InfiniBand EDR 100 Gb/s for cluster C and
//! InfiniBand QDR 40 Gb/s for the GPU cluster.

use crate::{Rank, SimTime};

/// Latency/bandwidth description of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// Creates a link spec.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        Self {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Gigabit Ethernet: ~125 MB/s usable, ~120 µs latency (kernel TCP).
    pub fn gigabit_ethernet() -> Self {
        Self::new(120e-6, 117e6)
    }

    /// InfiniBand EDR 100 Gb/s: ~11 GB/s usable, ~1.5 µs latency.
    pub fn infiniband_edr() -> Self {
        Self::new(1.5e-6, 11e9)
    }

    /// InfiniBand QDR 40 Gb/s: ~4 GB/s usable, ~2 µs latency.
    pub fn infiniband_qdr() -> Self {
        Self::new(2.0e-6, 4e9)
    }

    /// Loopback (same-node) transfer: memcpy-class bandwidth.
    pub fn loopback() -> Self {
        Self::new(0.2e-6, 20e9)
    }

    /// Transfer time for a message of `bytes` bytes over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// Interconnect topology for a cluster of `n` ranks.
///
/// The default is a uniform full-duplex switch (every ordered pair of
/// distinct ranks uses the same [`LinkSpec`]); individual directed links can
/// be overridden for heterogeneous setups.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    default_link: LinkSpec,
    overrides: Vec<((Rank, Rank), LinkSpec)>,
}

impl Topology {
    /// A uniform topology where every inter-rank link has spec `link`.
    pub fn uniform(n: usize, link: LinkSpec) -> Self {
        Self {
            n,
            default_link: link,
            overrides: Vec::new(),
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// Overrides the directed link `src → dst`.
    pub fn set_link(&mut self, src: Rank, dst: Rank, link: LinkSpec) {
        if let Some(entry) = self.overrides.iter_mut().find(|(k, _)| *k == (src, dst)) {
            entry.1 = link;
        } else {
            self.overrides.push(((src, dst), link));
        }
    }

    /// The spec of the directed link `src → dst`.  Messages a rank sends to
    /// itself use a loopback link.
    pub fn link(&self, src: Rank, dst: Rank) -> LinkSpec {
        if src == dst {
            return LinkSpec::loopback();
        }
        self.overrides
            .iter()
            .find(|(k, _)| *k == (src, dst))
            .map(|(_, l)| *l)
            .unwrap_or(self.default_link)
    }

    /// Transfer time for `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: Rank, dst: Rank, bytes: u64) -> SimTime {
        self.link(src, dst).transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let l = LinkSpec::new(1e-3, 1e6);
        let t = l.transfer_time(2_000_000);
        assert!((t - 2.001).abs() < 1e-9);
    }

    #[test]
    fn gigabit_is_slower_than_infiniband() {
        let bytes = 32 * 1024;
        assert!(
            LinkSpec::gigabit_ethernet().transfer_time(bytes)
                > LinkSpec::infiniband_edr().transfer_time(bytes) * 10.0
        );
    }

    #[test]
    fn uniform_topology_and_overrides() {
        let mut t = Topology::uniform(4, LinkSpec::gigabit_ethernet());
        assert_eq!(t.n_ranks(), 4);
        assert_eq!(t.link(0, 1), LinkSpec::gigabit_ethernet());
        t.set_link(0, 1, LinkSpec::infiniband_edr());
        assert_eq!(t.link(0, 1), LinkSpec::infiniband_edr());
        // Reverse direction untouched.
        assert_eq!(t.link(1, 0), LinkSpec::gigabit_ethernet());
        // Overriding again replaces, not duplicates.
        t.set_link(0, 1, LinkSpec::infiniband_qdr());
        assert_eq!(t.link(0, 1), LinkSpec::infiniband_qdr());
    }

    #[test]
    fn self_link_is_loopback() {
        let t = Topology::uniform(2, LinkSpec::gigabit_ethernet());
        assert_eq!(t.link(1, 1), LinkSpec::loopback());
        assert!(t.transfer_time(1, 1, 1024) < 1e-5);
    }

    #[test]
    fn latency_dominates_small_messages_on_ethernet() {
        let l = LinkSpec::gigabit_ethernet();
        let small = l.transfer_time(64);
        assert!(small < 2.0 * l.latency_s);
        let big = l.transfer_time(10_000_000);
        assert!(big > 0.05);
    }
}
