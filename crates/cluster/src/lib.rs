//! # pi-cluster
//!
//! The distributed-execution substrate of the PipeInfer reproduction: an
//! MPI-like message-passing abstraction plus two interchangeable drivers
//! that execute a set of *rank state machines*:
//!
//! * [`threaded::ThreadedDriver`] — one OS thread per rank, crossbeam
//!   channels as the interconnect, real wall-clock time.  This is the
//!   "real execution" path used with tiny real models.
//! * [`sim::SimDriver`] — a deterministic discrete-event simulator with a
//!   per-link latency/bandwidth model and a virtual clock.  This is how the
//!   paper's 70B–180B-scale experiments are reproduced.
//!
//! ## Programming model
//!
//! The paper's implementation writes each MPI rank as straight-line code
//! issuing tagged, buffered, non-overtaking point-to-point operations, and
//! layers a *transaction* construct on top to keep multi-message operations
//! atomic and ordered (paper §IV-A2, Fig. 2).  Here each rank is written as
//! an event-driven [`NodeBehavior`]: the driver delivers one logical message
//! at a time (a whole transaction's payload travels as one typed message, so
//! transaction atomicity holds by construction) and preserves per-link FIFO
//! ordering, which is the property PipeInfer's correctness argument needs.
//! Idle ranks get [`NodeBehavior::on_idle`] callbacks — this is where the
//! head node's continuous speculation lives ("probe for logits; if none,
//! speculate", paper §IV-B).
//!
//! Both drivers provide the same [`NodeCtx`] interface to behaviors, so the
//! exact same scheduling code runs threaded (real time) and simulated
//! (virtual time).

pub mod fault;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod topology;

pub use fault::{FaultInjector, FaultPlan, KillTrigger, LinkFaults};
pub use sim::HaltReason;
pub use stats::{ClusterStats, NodeStats};
pub use topology::{LinkSpec, Topology};

// Tracing vocabulary, re-exported so behavior crates need no direct
// `pi-trace` dependency for recording (analysis/export tooling should depend
// on `pi-trace` itself).
pub use pi_trace::{
    Clock, ClockDomain, Event, EventKind, ManualClock, MonotonicClock, Trace, TraceBuffer,
    TraceConfig,
};

/// Index of a rank (node) within the cluster, 0-based.  Rank 0 is always the
/// head node.
pub type Rank = usize;

/// Message tag, mirroring MPI tags.  With typed messages the tag is purely
/// informational (useful in traces), but per-link ordering is maintained
/// regardless of tag, which is stronger than MPI's per-(src,dst,tag)
/// guarantee and therefore safe.
pub type Tag = u32;

/// Virtual or measured time in seconds.
pub type SimTime = f64;

/// A message that can be sent between ranks.
///
/// `wire_bytes` is used by the simulated interconnect to charge transfer
/// time; the threaded driver ignores it.  `Clone` lets a fault schedule
/// deliver a message twice ([`LinkFaults::and_duplicate`]); the fault-free
/// paths never clone.
pub trait WireMessage: Clone + Send + 'static {
    /// Serialized size of the message in bytes.
    fn wire_bytes(&self) -> u64;

    /// Whether the message is an out-of-band control signal that receivers
    /// check for at synchronisation points ahead of their normal queue —
    /// PipeInfer's cancellation signals are the motivating example
    /// (paper §IV-D2).  Ordinary transaction traffic returns `false` and is
    /// delivered in strict per-link FIFO order.
    fn priority(&self) -> bool {
        false
    }

    /// Whether the message belongs to the draft-rank protocol (draft
    /// requests, responses and their cancellation signals).  Drivers account
    /// such traffic separately in [`NodeStats`] so the cost of the paper's
    /// Fig. 3 dedicated-draft-rank layout is visible per rank.
    fn is_draft(&self) -> bool {
        false
    }
}

/// Context handed to a [`NodeBehavior`] during callbacks.
///
/// All interaction with the outside world (sending messages, charging
/// compute time, reading the clock) goes through this trait so behaviors are
/// oblivious to whether they run threaded or simulated.
pub trait NodeCtx<M: WireMessage> {
    /// This rank's index.
    fn rank(&self) -> Rank;
    /// Number of ranks in the cluster.
    fn world_size(&self) -> usize;
    /// Current time in seconds (wall-clock since launch for the threaded
    /// driver, virtual time for the simulator).
    fn now(&self) -> SimTime;
    /// Buffered, non-blocking send of `msg` to `dst`.  The send completes
    /// immediately from the sender's perspective (MPI buffered-send
    /// semantics, which the paper relies on to keep the pipeline moving).
    fn send(&mut self, dst: Rank, tag: Tag, msg: M);
    /// Charges `seconds` of compute time to this rank.  The simulator
    /// advances the rank's virtual clock; the threaded driver only records
    /// the figure for utilisation statistics (real compute already consumed
    /// real time).
    fn elapse(&mut self, seconds: SimTime);
    /// Records that this rank skipped `n` units of work thanks to an early
    /// cancellation signal (a stage evaluation a worker never ran, a stale
    /// draft hypothesis the draft rank never served).  Drivers accumulate
    /// the figure into [`NodeStats::cancellations_saved`]; the default is a
    /// no-op so test contexts need not care.
    fn record_cancellation_saved(&mut self, _n: u64) {}
    /// Records that a draft request's deadline expired on this rank without
    /// a response.  Accumulated into [`NodeStats::draft_timeouts`]; default
    /// no-op.
    fn record_draft_timeout(&mut self) {}
    /// Records that this rank re-issued a draft request after a timeout or
    /// refusal.  Accumulated into [`NodeStats::draft_retries`]; default
    /// no-op.
    fn record_draft_retry(&mut self) {}
    /// Records that this rank failed over away from a remote drafter.
    /// Accumulated into [`NodeStats::failovers`]; default no-op.
    fn record_failover(&mut self) {}
    /// Records paged KV-cache activity drained from this rank's engines:
    /// pages materialised, pool pages attached via prefix hits, copy-on-write
    /// clones and page releases/evictions.  Accumulated into the
    /// `NodeStats::kv_*` counters; default no-op.
    fn record_kv_pages(&mut self, _allocated: u64, _share_hits: u64, _cows: u64, _evictions: u64) {}
    /// Records that this rank evaluated one decode micro-batch fusing
    /// `width` requests (batch lanes) and `rows` total batch rows through
    /// its layer slice.  Accumulated into [`NodeStats::cohort_steps`],
    /// [`NodeStats::cohort_width_sum`] and [`NodeStats::batched_rows`];
    /// default no-op.
    fn record_cohort_step(&mut self, _width: u64, _rows: u64) {}
    /// Asks the driver to re-invoke [`NodeBehavior::on_idle`] at time `at`
    /// even if no message has arrived by then — how a behavior arms a
    /// deadline (e.g. a draft-request timeout).  The simulator honors wake
    /// requests only while a fault schedule is attached (fault-free
    /// schedules stay pinned); the threaded driver's 1 ms poll loop already
    /// provides this and ignores the hint.  Default no-op.
    fn request_wake(&mut self, _at: SimTime) {}
    /// Whether a trace recorder is attached to this rank.  Event sites guard
    /// on this before constructing an [`EventKind`] (see [`trace_if`]), so a
    /// disabled recorder costs a single predictable branch — the default is
    /// a constant `false`, which also keeps every hand-rolled test context
    /// compiling unchanged.
    fn trace_enabled(&self) -> bool {
        false
    }
    /// Records a structured event, stamped with this rank and [`now`]
    /// (span kinds are recorded at their *end*; see [`EventKind`]).  No-op
    /// unless a driver attached a recorder via `with_trace`.
    ///
    /// [`now`]: NodeCtx::now
    fn trace(&mut self, _kind: EventKind) {}
}

/// Records `kind()` iff `ctx` has an enabled recorder.
///
/// The closure keeps event construction off the hot path: when tracing is
/// disabled the cost is the `trace_enabled` virtual call and one branch
/// (benchmarked under 5 ns), regardless of how expensive the event's fields
/// are to compute.
#[inline]
pub fn trace_if<M: WireMessage>(ctx: &mut dyn NodeCtx<M>, kind: impl FnOnce() -> EventKind) {
    if ctx.trace_enabled() {
        let kind = kind();
        ctx.trace(kind);
    }
}

/// A rank state machine.
///
/// Implementations live in `pi-spec` (baselines) and `pipeinfer-core`
/// (PipeInfer's head, worker and draft nodes).
pub trait NodeBehavior<M: WireMessage>: Send {
    /// Called once before any message is delivered.
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx<M>) {}

    /// Called for every delivered message, in per-link FIFO order.
    fn on_message(&mut self, src: Rank, tag: Tag, msg: M, ctx: &mut dyn NodeCtx<M>);

    /// Called when no message is currently deliverable.  Return `true` if
    /// useful work was performed (the driver will poll again immediately);
    /// return `false` to block until the next message arrives.
    fn on_idle(&mut self, _ctx: &mut dyn NodeCtx<M>) -> bool {
        false
    }

    /// Whether this rank has finished all its work.  The drivers stop a rank
    /// as soon as this returns `true` and stop the run once every rank is
    /// finished.
    fn is_finished(&self) -> bool;

    /// Downcasting support so callers can extract results from their concrete
    /// behavior types after a run.
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Ping(#[allow(dead_code)] u64);
    impl WireMessage for Ping {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    struct Nop;
    impl NodeBehavior<Ping> for Nop {
        fn on_message(&mut self, _: Rank, _: Tag, _: Ping, _: &mut dyn NodeCtx<Ping>) {}
        fn is_finished(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn default_on_idle_blocks() {
        struct Ctx;
        impl NodeCtx<Ping> for Ctx {
            fn rank(&self) -> Rank {
                0
            }
            fn world_size(&self) -> usize {
                1
            }
            fn now(&self) -> SimTime {
                0.0
            }
            fn send(&mut self, _: Rank, _: Tag, _: Ping) {}
            fn elapse(&mut self, _: SimTime) {}
        }
        let mut n = Nop;
        assert!(!n.on_idle(&mut Ctx));
        assert!(n.is_finished());
    }
}
