//! Per-rank and cluster-wide execution statistics.
//!
//! Both drivers populate these; the benches use them for the utilisation and
//! communication-volume numbers quoted alongside the paper's figures
//! (e.g. "system utilization doubled" in §I).

use crate::{Rank, SimTime};

/// Statistics for a single rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Seconds spent in compute (charged via `NodeCtx::elapse`).
    pub busy_time: SimTime,
    /// Number of messages sent by this rank.
    pub messages_sent: u64,
    /// Number of messages received (delivered) by this rank.
    pub messages_received: u64,
    /// Total bytes sent by this rank.
    pub bytes_sent: u64,
    /// Number of idle callbacks that performed work.
    pub idle_work: u64,
    /// Messages sent by this rank belonging to the draft-rank protocol
    /// (draft requests/responses and draft cancellations; a subset of
    /// `messages_sent`).
    pub draft_messages_sent: u64,
    /// Bytes sent by this rank on the draft-rank protocol (a subset of
    /// `bytes_sent`).
    pub draft_bytes_sent: u64,
    /// Units of work this rank skipped thanks to early cancellation signals
    /// (stage evaluations never run, stale draft hypotheses never served).
    pub cancellations_saved: u64,
    /// Draft requests whose deadline expired on this rank without a
    /// response (the head is the only rank that records these).
    pub draft_timeouts: u64,
    /// Draft requests this rank re-issued after a timeout or an empty
    /// refusal (bounded, jittered backoff between attempts).
    pub draft_retries: u64,
    /// Times this rank abandoned a remote drafter and failed over to a local
    /// fallback (or degraded to non-speculative decoding).
    pub failovers: u64,
    /// Faults a chaos schedule injected on this rank: dropped/delayed/
    /// duplicated/reordered messages it sent, plus pauses and kills it
    /// suffered.
    pub faults_injected: u64,
    /// KV pages this rank's paged caches materialised on first write.
    pub kv_pages_allocated: u64,
    /// Committed pool pages this rank attached instead of recomputing
    /// (prefix-cache hits, counted in pages).
    pub kv_page_share_hits: u64,
    /// Shared pages this rank cloned copy-on-write at divergence points.
    pub kv_page_cows: u64,
    /// Pages this rank released or evicted at page granularity (fully-free
    /// private pages plus pool LRU evictions it triggered).
    pub kv_page_evictions: u64,
    /// Decode micro-batches this rank evaluated through its layer slice —
    /// one per `stage_forward`, whatever the cohort width.
    pub cohort_steps: u64,
    /// Sum over those steps of the number of requests (batch lanes) fused
    /// into the step's forest batch; `cohort_width_sum / cohort_steps` is
    /// the mean cohort width.  Thread-per-request serving counts width 1
    /// everywhere; iteration-level batching counts the in-flight cohort.
    pub cohort_width_sum: u64,
    /// Total batch rows those steps pushed through the fused projections
    /// and FFNs (each row shares the step's single weight stream).
    pub batched_rows: u64,
}

impl NodeStats {
    /// Utilisation of this rank over a run of `total_time` seconds.
    pub fn utilization(&self, total_time: SimTime) -> f64 {
        if total_time <= 0.0 {
            0.0
        } else {
            (self.busy_time / total_time).min(1.0)
        }
    }
}

/// Statistics for the whole cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Total run time in seconds (virtual for the simulator, wall-clock for
    /// the threaded driver).
    pub total_time: SimTime,
    /// Per-rank statistics, indexed by rank.
    pub nodes: Vec<NodeStats>,
}

impl ClusterStats {
    /// Creates empty statistics for `n` ranks.
    pub fn new(n: usize) -> Self {
        Self {
            total_time: 0.0,
            nodes: vec![NodeStats::default(); n],
        }
    }

    /// Statistics of rank `r`.
    pub fn node(&self, r: Rank) -> &NodeStats {
        &self.nodes[r]
    }

    /// Mean utilisation across ranks.
    pub fn mean_utilization(&self) -> f64 {
        if self.nodes.is_empty() || self.total_time <= 0.0 {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.utilization(self.total_time))
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total draft-protocol messages sent across all ranks.
    pub fn total_draft_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.draft_messages_sent).sum()
    }

    /// Total draft-protocol bytes sent across all ranks.
    pub fn total_draft_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.draft_bytes_sent).sum()
    }

    /// Total units of work saved by early cancellation across all ranks.
    pub fn total_cancellations_saved(&self) -> u64 {
        self.nodes.iter().map(|n| n.cancellations_saved).sum()
    }

    /// Total expired draft-request deadlines across all ranks.
    pub fn total_draft_timeouts(&self) -> u64 {
        self.nodes.iter().map(|n| n.draft_timeouts).sum()
    }

    /// Total re-issued draft requests across all ranks.
    pub fn total_draft_retries(&self) -> u64 {
        self.nodes.iter().map(|n| n.draft_retries).sum()
    }

    /// Total drafter failovers across all ranks.
    pub fn total_failovers(&self) -> u64 {
        self.nodes.iter().map(|n| n.failovers).sum()
    }

    /// Total injected faults across all ranks.
    pub fn total_faults_injected(&self) -> u64 {
        self.nodes.iter().map(|n| n.faults_injected).sum()
    }

    /// Total KV pages materialised across all ranks.
    pub fn total_kv_pages_allocated(&self) -> u64 {
        self.nodes.iter().map(|n| n.kv_pages_allocated).sum()
    }

    /// Total pool pages attached via prefix-cache hits across all ranks.
    pub fn total_kv_page_share_hits(&self) -> u64 {
        self.nodes.iter().map(|n| n.kv_page_share_hits).sum()
    }

    /// Total copy-on-write page clones across all ranks.
    pub fn total_kv_page_cows(&self) -> u64 {
        self.nodes.iter().map(|n| n.kv_page_cows).sum()
    }

    /// Total page releases/evictions across all ranks.
    pub fn total_kv_page_evictions(&self) -> u64 {
        self.nodes.iter().map(|n| n.kv_page_evictions).sum()
    }

    /// Total decode micro-batches evaluated across all ranks.
    pub fn total_cohort_steps(&self) -> u64 {
        self.nodes.iter().map(|n| n.cohort_steps).sum()
    }

    /// Total batch rows pushed through fused stage forwards across all
    /// ranks.
    pub fn total_batched_rows(&self) -> u64 {
        self.nodes.iter().map(|n| n.batched_rows).sum()
    }

    /// Mean number of requests fused per decode step across all ranks
    /// (1.0 for thread-per-request serving, > 1 when iteration-level
    /// batching actually fuses concurrent requests; 0 when no stage ever
    /// ran).
    pub fn mean_cohort_width(&self) -> f64 {
        let steps = self.total_cohort_steps();
        if steps == 0 {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cohort_width_sum).sum::<u64>() as f64 / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let n = NodeStats {
            busy_time: 5.0,
            ..Default::default()
        };
        assert!((n.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(n.utilization(0.0), 0.0);
        // Clamped at 1 even if accounting slightly overshoots.
        assert_eq!(n.utilization(4.0), 1.0);
    }

    #[test]
    fn cluster_aggregates() {
        let mut c = ClusterStats::new(2);
        c.total_time = 10.0;
        c.nodes[0].busy_time = 10.0;
        c.nodes[0].messages_sent = 3;
        c.nodes[0].bytes_sent = 100;
        c.nodes[1].busy_time = 0.0;
        c.nodes[1].messages_sent = 1;
        c.nodes[1].bytes_sent = 50;
        assert!((c.mean_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(c.total_messages(), 4);
        assert_eq!(c.total_bytes(), 150);
        assert_eq!(c.node(1).messages_sent, 1);
    }

    #[test]
    fn draft_and_cancellation_aggregates() {
        let mut c = ClusterStats::new(3);
        c.nodes[0].draft_messages_sent = 4;
        c.nodes[0].draft_bytes_sent = 400;
        c.nodes[1].draft_messages_sent = 2;
        c.nodes[1].draft_bytes_sent = 100;
        c.nodes[1].cancellations_saved = 5;
        c.nodes[2].cancellations_saved = 1;
        assert_eq!(c.total_draft_messages(), 6);
        assert_eq!(c.total_draft_bytes(), 500);
        assert_eq!(c.total_cancellations_saved(), 6);
    }

    #[test]
    fn recovery_and_fault_aggregates() {
        let mut c = ClusterStats::new(3);
        c.nodes[0].draft_timeouts = 2;
        c.nodes[0].draft_retries = 3;
        c.nodes[0].failovers = 1;
        c.nodes[1].faults_injected = 4;
        c.nodes[2].faults_injected = 1;
        assert_eq!(c.total_draft_timeouts(), 2);
        assert_eq!(c.total_draft_retries(), 3);
        assert_eq!(c.total_failovers(), 1);
        assert_eq!(c.total_faults_injected(), 5);
    }

    #[test]
    fn kv_page_aggregates() {
        let mut c = ClusterStats::new(2);
        c.nodes[0].kv_pages_allocated = 8;
        c.nodes[0].kv_page_share_hits = 3;
        c.nodes[1].kv_page_cows = 2;
        c.nodes[1].kv_page_evictions = 5;
        assert_eq!(c.total_kv_pages_allocated(), 8);
        assert_eq!(c.total_kv_page_share_hits(), 3);
        assert_eq!(c.total_kv_page_cows(), 2);
        assert_eq!(c.total_kv_page_evictions(), 5);
    }

    #[test]
    fn cohort_aggregates() {
        let mut c = ClusterStats::new(2);
        assert_eq!(c.mean_cohort_width(), 0.0, "no steps yet");
        c.nodes[0].cohort_steps = 3;
        c.nodes[0].cohort_width_sum = 9;
        c.nodes[0].batched_rows = 12;
        c.nodes[1].cohort_steps = 1;
        c.nodes[1].cohort_width_sum = 1;
        c.nodes[1].batched_rows = 2;
        assert_eq!(c.total_cohort_steps(), 4);
        assert_eq!(c.total_batched_rows(), 14);
        assert!((c.mean_cohort_width() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_is_safe() {
        let c = ClusterStats::new(0);
        assert_eq!(c.mean_utilization(), 0.0);
        assert_eq!(c.total_messages(), 0);
    }
}
