//! Deterministic discrete-event cluster simulator.
//!
//! The simulator executes a set of [`NodeBehavior`] rank state machines
//! under a virtual clock:
//!
//! * compute time is charged explicitly by behaviors via
//!   [`NodeCtx::elapse`] (the amounts come from `pi-perf`'s roofline model),
//! * message transfer time is charged from the [`Topology`]'s per-link
//!   latency/bandwidth model, with each directed link serialising its
//!   messages (a later send cannot overtake an earlier one — the
//!   non-overtaking guarantee PipeInfer's transaction ordering relies on),
//! * an idle rank is offered [`NodeBehavior::on_idle`] work exactly when the
//!   real system would find its probe empty: whenever the rank's local clock
//!   is the globally smallest activation time and no delivered message is
//!   waiting.
//!
//! The event loop is conservative (it always advances the globally earliest
//! activation), so results are bit-for-bit reproducible across runs and
//! platforms.

use crate::fault::{FaultInjector, FaultPlan};
use crate::stats::ClusterStats;
use crate::topology::Topology;
use crate::{NodeBehavior, NodeCtx, Rank, SimTime, Tag, WireMessage};
use pi_trace::{ClockDomain, EventKind, FaultKind, Trace, TraceBuffer, TraceConfig};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Why a simulated run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Every rank reported `is_finished()`.  Ranks killed by a fault
    /// schedule count as finished — the survivors completed without them.
    Finished,
    /// No rank could make progress: every unfinished rank was blocked with
    /// no message in flight.
    Deadlock,
    /// The run exceeded [`SimDriver::with_max_time`].
    TimeLimit,
    /// The run exceeded [`SimDriver::with_max_events`].
    EventLimit,
    /// A fault-schedule kill left the survivors stuck: at least one
    /// unfinished rank was waiting on a dead one when the run stalled.
    RankKilled,
}

/// Result of a simulated run.
pub struct SimOutcome<M: WireMessage> {
    /// The rank behaviors after the run (extract results by downcasting or
    /// through shared handles).
    pub behaviors: Vec<Box<dyn NodeBehavior<M>>>,
    /// Per-rank and cluster statistics; `stats.total_time` is the virtual
    /// makespan of the run.
    pub stats: ClusterStats,
    /// Why the run stopped; [`SimOutcome::completed`] folds it to a bool.
    pub halt: HaltReason,
    /// Structured event trace, present iff recording was requested via
    /// [`SimDriver::with_trace`] (and the `trace` feature is on).  Timestamps
    /// are virtual [`ClockDomain::Virtual`] seconds, so the trace — like the
    /// simulation itself — is bit-for-bit reproducible.
    pub trace: Option<Trace>,
}

impl<M: WireMessage> SimOutcome<M> {
    /// `true` iff the run finished cleanly ([`HaltReason::Finished`]).
    pub fn completed(&self) -> bool {
        self.halt == HaltReason::Finished
    }
}

/// Discrete-event simulation driver.
pub struct SimDriver {
    topology: Topology,
    max_time: SimTime,
    max_events: u64,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
}

struct Pending<M> {
    arrival: SimTime,
    seq: u64,
    src: Rank,
    tag: Tag,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .arrival
            .partial_cmp(&self.arrival)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The `NodeCtx` the simulator hands to behaviors: it records sends and
/// elapsed compute so the driver can apply them after the callback returns.
struct SimCtx<M> {
    rank: Rank,
    world: usize,
    now: SimTime,
    elapsed: SimTime,
    saved: u64,
    draft_timeouts: u64,
    draft_retries: u64,
    failovers: u64,
    kv_pages_allocated: u64,
    kv_page_share_hits: u64,
    kv_page_cows: u64,
    kv_page_evictions: u64,
    cohort_steps: u64,
    cohort_width_sum: u64,
    batched_rows: u64,
    /// Earliest wake-up the behavior requested during this callback.  Wake
    /// requests last until the rank's next activation, then must be
    /// re-armed; the driver honors them only while a fault schedule is
    /// attached (fault-free schedules stay pinned).
    wake: Option<SimTime>,
    outgoing: Vec<(Rank, Tag, M, SimTime)>,
    /// Recording is purely passive — events are buffered here and drained
    /// into the per-rank [`TraceBuffer`] after the callback returns, so a
    /// traced run takes the exact same schedule as an untraced one.
    trace_on: bool,
    events: Vec<(SimTime, EventKind)>,
}

impl<M> SimCtx<M> {
    fn new(rank: Rank, world: usize, now: SimTime, trace_on: bool) -> Self {
        Self {
            rank,
            world,
            now,
            elapsed: 0.0,
            saved: 0,
            draft_timeouts: 0,
            draft_retries: 0,
            failovers: 0,
            kv_pages_allocated: 0,
            kv_page_share_hits: 0,
            kv_page_cows: 0,
            kv_page_evictions: 0,
            cohort_steps: 0,
            cohort_width_sum: 0,
            batched_rows: 0,
            wake: None,
            outgoing: Vec::new(),
            trace_on,
            events: Vec::new(),
        }
    }
}

impl<M: WireMessage> NodeCtx<M> for SimCtx<M> {
    fn rank(&self) -> Rank {
        self.rank
    }
    fn world_size(&self) -> usize {
        self.world
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, dst: Rank, tag: Tag, msg: M) {
        if self.trace_on {
            self.events.push((
                self.now,
                EventKind::WireSend {
                    dst: dst as u32,
                    tag,
                    bytes: msg.wire_bytes(),
                    draft: msg.is_draft(),
                },
            ));
        }
        self.outgoing.push((dst, tag, msg, self.now));
    }
    fn elapse(&mut self, seconds: SimTime) {
        let s = seconds.max(0.0);
        self.now += s;
        self.elapsed += s;
        // Span-end convention: the Compute span is stamped at its end.
        if self.trace_on && s > 0.0 {
            self.events.push((self.now, EventKind::Compute { dur: s }));
        }
    }
    fn record_cancellation_saved(&mut self, n: u64) {
        self.saved += n;
    }
    fn record_draft_timeout(&mut self) {
        self.draft_timeouts += 1;
    }
    fn record_draft_retry(&mut self) {
        self.draft_retries += 1;
    }
    fn record_failover(&mut self) {
        self.failovers += 1;
    }
    fn record_kv_pages(&mut self, allocated: u64, share_hits: u64, cows: u64, evictions: u64) {
        self.kv_pages_allocated += allocated;
        self.kv_page_share_hits += share_hits;
        self.kv_page_cows += cows;
        self.kv_page_evictions += evictions;
    }
    fn record_cohort_step(&mut self, width: u64, rows: u64) {
        self.cohort_steps += 1;
        self.cohort_width_sum += width;
        self.batched_rows += rows;
    }
    fn request_wake(&mut self, at: SimTime) {
        self.wake = Some(match self.wake {
            Some(w) => w.min(at),
            None => at,
        });
    }
    fn trace_enabled(&self) -> bool {
        cfg!(feature = "trace") && self.trace_on
    }
    fn trace(&mut self, kind: EventKind) {
        if self.trace_on {
            self.events.push((self.now, kind));
        }
    }
}

enum ActivationKind {
    Deliver,
    Idle,
}

impl SimDriver {
    /// Creates a driver over the given topology with generous default limits
    /// (10⁶ simulated seconds, 50 M events).
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            max_time: 1e6,
            max_events: 50_000_000,
            trace: None,
            faults: None,
        }
    }

    /// Sets the maximum virtual time before the run is aborted.
    pub fn with_max_time(mut self, max_time: SimTime) -> Self {
        self.max_time = max_time;
        self
    }

    /// Sets the maximum number of events before the run is aborted.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Attaches a structured event recorder; the run's [`SimOutcome::trace`]
    /// carries the assembled [`Trace`] stamped with virtual time.  Recording
    /// never perturbs the simulated schedule.
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Attaches a seeded chaos schedule ([`FaultPlan`]) to the run.  The
    /// schedule perturbs the simulation deterministically: the same plan
    /// over the same behaviors replays bit-identically, trace included.
    /// An empty plan is ignored, leaving the fault-free schedule untouched.
    ///
    /// While a plan is attached the driver also honors
    /// [`NodeCtx::request_wake`], so behaviors can arm deadlines (e.g. a
    /// draft-request timeout) that fire even when no message ever arrives.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the behaviors to completion (or until a limit is hit).
    ///
    /// `behaviors[r]` is rank `r`; the topology must have at least that many
    /// ranks.
    pub fn run<M: WireMessage>(
        &self,
        mut behaviors: Vec<Box<dyn NodeBehavior<M>>>,
    ) -> SimOutcome<M> {
        let n = behaviors.len();
        assert!(
            self.topology.n_ranks() >= n,
            "topology has {} ranks but {} behaviors were provided",
            self.topology.n_ranks(),
            n
        );
        let mut stats = ClusterStats::new(n);
        let mut local_time = vec![0.0f64; n];
        let mut blocked = vec![false; n];
        let mut finished = vec![false; n];
        let mut pending: Vec<BinaryHeap<Pending<M>>> = (0..n).map(|_| BinaryHeap::new()).collect();
        let mut priority_pending: Vec<BinaryHeap<Pending<M>>> =
            (0..n).map(|_| BinaryHeap::new()).collect();
        let mut link_free = vec![vec![0.0f64; n]; n];
        // Latest scheduled in-order arrival per link: delay faults stretch a
        // message's flight time but must not let later traffic overtake it
        // (per-link FIFO holds unless a reorder fault explicitly lifts it).
        let mut link_fifo = vec![vec![0.0f64; n]; n];
        let mut seq = 0u64;
        let mut events = 0u64;

        // Fault schedule (chaos testing).  `None` keeps every fault-free
        // code path — including wake handling — exactly as it always was.
        let mut injector: Option<FaultInjector> = self
            .faults
            .as_ref()
            .filter(|p| !p.is_empty())
            .map(|p| FaultInjector::new(p.clone(), n));
        let faults_armed = injector.is_some();
        let mut killed = vec![false; n];
        let mut wake: Vec<Option<SimTime>> = vec![None; n];

        let trace_config = if cfg!(feature = "trace") {
            self.trace
        } else {
            None
        };
        let mut bufs: Option<Vec<TraceBuffer>> = trace_config.map(|c| {
            (0..n)
                .map(|r| TraceBuffer::new(r as u32, c.capacity_per_rank))
                .collect()
        });
        let trace_on = bufs.is_some();
        // Start of the wait being tracked for each rank's `Blocked` span
        // (tracing only; never consulted by the scheduler).
        let mut block_start: Vec<Option<SimTime>> = vec![None; n];

        // on_start at t = 0 for every rank.
        for r in 0..n {
            let mut ctx = SimCtx::new(r, n, 0.0, trace_on);
            behaviors[r].on_start(&mut ctx);
            local_time[r] = ctx.now;
            stats.nodes[r].busy_time += ctx.elapsed;
            stats.nodes[r].cancellations_saved += ctx.saved;
            stats.nodes[r].draft_timeouts += ctx.draft_timeouts;
            stats.nodes[r].draft_retries += ctx.draft_retries;
            stats.nodes[r].failovers += ctx.failovers;
            stats.nodes[r].kv_pages_allocated += ctx.kv_pages_allocated;
            stats.nodes[r].kv_page_share_hits += ctx.kv_page_share_hits;
            stats.nodes[r].kv_page_cows += ctx.kv_page_cows;
            stats.nodes[r].kv_page_evictions += ctx.kv_page_evictions;
            stats.nodes[r].cohort_steps += ctx.cohort_steps;
            stats.nodes[r].cohort_width_sum += ctx.cohort_width_sum;
            stats.nodes[r].batched_rows += ctx.batched_rows;
            if faults_armed {
                wake[r] = ctx.wake;
            }
            if let Some(bufs) = bufs.as_mut() {
                for (ts, kind) in ctx.events.drain(..) {
                    bufs[r].push(ts, kind);
                }
            }
            Self::dispatch(
                &self.topology,
                &mut stats,
                &mut pending,
                &mut priority_pending,
                &mut link_free,
                &mut link_fifo,
                &mut blocked,
                &mut seq,
                r,
                ctx.outgoing,
                &mut injector,
                &mut bufs,
            );
            finished[r] = behaviors[r].is_finished();
            if finished[r] {
                if let Some(bufs) = bufs.as_mut() {
                    bufs[r].push(local_time[r], EventKind::RankFinished);
                }
            }
        }

        let halt = loop {
            if (0..n).all(|r| finished[r] || killed[r]) {
                break HaltReason::Finished;
            }
            if events >= self.max_events {
                break HaltReason::EventLimit;
            }
            // Choose the rank with the earliest activation.
            let mut best: Option<(SimTime, Rank, ActivationKind)> = None;
            for r in 0..n {
                if finished[r] || killed[r] {
                    continue;
                }
                let earliest_arrival = match (pending[r].peek(), priority_pending[r].peek()) {
                    (Some(a), Some(b)) => Some(a.arrival.min(b.arrival)),
                    (Some(a), None) => Some(a.arrival),
                    (None, Some(b)) => Some(b.arrival),
                    (None, None) => None,
                };
                let candidate = if !blocked[r] {
                    let kind = if earliest_arrival
                        .map(|a| a <= local_time[r])
                        .unwrap_or(false)
                    {
                        ActivationKind::Deliver
                    } else {
                        ActivationKind::Idle
                    };
                    Some((local_time[r], r, kind))
                } else {
                    // A blocked rank normally waits for its next arrival;
                    // with faults armed, an armed wake-up (deadline) can
                    // also rouse it for an idle poll.
                    let deliver =
                        earliest_arrival.map(|a| (local_time[r].max(a), ActivationKind::Deliver));
                    let woken = if faults_armed {
                        wake[r].map(|w| (local_time[r].max(w), ActivationKind::Idle))
                    } else {
                        None
                    };
                    match (deliver, woken) {
                        (Some((td, kd)), Some((tw, kw))) => {
                            Some(if tw < td { (tw, r, kw) } else { (td, r, kd) })
                        }
                        (Some((td, kd)), None) => Some((td, r, kd)),
                        (None, Some((tw, kw))) => Some((tw, r, kw)),
                        (None, None) => None,
                    }
                };
                if let Some((t, r2, k)) = candidate {
                    let better = match &best {
                        None => true,
                        Some((bt, br, _)) => t < *bt || (t == *bt && r2 < *br),
                    };
                    if better {
                        best = Some((t, r2, k));
                    }
                }
            }
            let Some((t, r, kind)) = best else {
                // No rank can make progress with unfinished ranks left: a
                // deadlock, or the aftermath of a fault-schedule kill.
                break if killed.iter().any(|&k| k) {
                    HaltReason::RankKilled
                } else {
                    HaltReason::Deadlock
                };
            };
            if t > self.max_time {
                break HaltReason::TimeLimit;
            }
            if let Some(inj) = injector.as_mut() {
                // Kills due at or before this activation fire first, then
                // the schedule is re-examined without the dead ranks.
                let newly = inj.due_kills(t, events);
                if !newly.is_empty() {
                    for k in newly {
                        killed[k] = true;
                        pending[k].clear();
                        priority_pending[k].clear();
                        wake[k] = None;
                        block_start[k] = None;
                        stats.nodes[k].faults_injected += 1;
                        if let Some(bufs) = bufs.as_mut() {
                            bufs[k].push(t, EventKind::RankKilled);
                        }
                    }
                    continue;
                }
                // A paused (straggler) rank defers its activation to the
                // end of the pause window.
                if let Some((deferred, first)) = inj.pause_deferral(r, t) {
                    if first {
                        stats.nodes[r].faults_injected += 1;
                        if let Some(bufs) = bufs.as_mut() {
                            bufs[r].push(
                                t,
                                EventKind::FaultInjected {
                                    fault: FaultKind::Pause,
                                    peer: r as u32,
                                },
                            );
                        }
                    }
                    local_time[r] = local_time[r].max(deferred);
                    continue;
                }
            }
            events += 1;
            local_time[r] = t;
            wake[r] = None;
            let mut ctx = SimCtx::new(r, n, t, trace_on);
            match kind {
                ActivationKind::Deliver => {
                    // Out-of-band control messages (e.g. cancellation
                    // signals) that have already arrived are checked first,
                    // ahead of the ordinary FIFO traffic.
                    let p = match priority_pending[r].peek() {
                        Some(pp) if pp.arrival <= t => priority_pending[r]
                            .pop()
                            .expect("peeked priority message must pop"),
                        _ => match pending[r].peek() {
                            Some(np) if np.arrival <= t => {
                                pending[r].pop().expect("peeked message must pop")
                            }
                            _ => priority_pending[r]
                                .pop()
                                .or_else(|| pending[r].pop())
                                .expect("deliver requires a pending message"),
                        },
                    };
                    if let Some(bufs) = bufs.as_mut() {
                        if let Some(bs) = block_start[r].take() {
                            if t > bs {
                                bufs[r].push(t, EventKind::Blocked { dur: t - bs });
                            }
                        }
                        bufs[r].push(
                            t,
                            EventKind::WireRecv {
                                src: p.src as u32,
                                tag: p.tag,
                                bytes: p.msg.wire_bytes(),
                            },
                        );
                    }
                    stats.nodes[r].messages_received += 1;
                    behaviors[r].on_message(p.src, p.tag, p.msg, &mut ctx);
                    blocked[r] = false;
                }
                ActivationKind::Idle => {
                    let worked = behaviors[r].on_idle(&mut ctx);
                    if worked {
                        stats.nodes[r].idle_work += 1;
                        // A blocked rank roused by a wake-up resumes; close
                        // the Blocked span its wait opened.
                        blocked[r] = false;
                        if let Some(bs) = block_start[r].take() {
                            if let Some(bufs) = bufs.as_mut() {
                                if t > bs {
                                    bufs[r].push(t, EventKind::Blocked { dur: t - bs });
                                }
                            }
                        }
                    } else {
                        blocked[r] = true;
                        if trace_on && block_start[r].is_none() {
                            block_start[r] = Some(ctx.now);
                        }
                    }
                }
            }
            local_time[r] = ctx.now;
            stats.nodes[r].busy_time += ctx.elapsed;
            stats.nodes[r].cancellations_saved += ctx.saved;
            stats.nodes[r].draft_timeouts += ctx.draft_timeouts;
            stats.nodes[r].draft_retries += ctx.draft_retries;
            stats.nodes[r].failovers += ctx.failovers;
            stats.nodes[r].kv_pages_allocated += ctx.kv_pages_allocated;
            stats.nodes[r].kv_page_share_hits += ctx.kv_page_share_hits;
            stats.nodes[r].kv_page_cows += ctx.kv_page_cows;
            stats.nodes[r].kv_page_evictions += ctx.kv_page_evictions;
            stats.nodes[r].cohort_steps += ctx.cohort_steps;
            stats.nodes[r].cohort_width_sum += ctx.cohort_width_sum;
            stats.nodes[r].batched_rows += ctx.batched_rows;
            if faults_armed {
                wake[r] = ctx.wake;
            }
            if let Some(bufs) = bufs.as_mut() {
                for (ts, kind) in ctx.events.drain(..) {
                    bufs[r].push(ts, kind);
                }
            }
            Self::dispatch(
                &self.topology,
                &mut stats,
                &mut pending,
                &mut priority_pending,
                &mut link_free,
                &mut link_fifo,
                &mut blocked,
                &mut seq,
                r,
                ctx.outgoing,
                &mut injector,
                &mut bufs,
            );
            if behaviors[r].is_finished() {
                finished[r] = true;
                pending[r].clear();
                priority_pending[r].clear();
                if let Some(bufs) = bufs.as_mut() {
                    // A rank that finishes straight out of a fruitless
                    // on_idle would otherwise leave a zero-length block open.
                    block_start[r] = None;
                    bufs[r].push(local_time[r], EventKind::RankFinished);
                }
            }
        };

        stats.total_time = local_time.iter().copied().fold(0.0, f64::max);
        if let Some(bufs) = bufs.as_mut() {
            // Close any wait still open at the end of an aborted run so the
            // per-rank timeline remains fully tiled.
            let end = stats.total_time;
            for r in 0..n {
                if let Some(bs) = block_start[r].take() {
                    if end > bs {
                        bufs[r].push(end, EventKind::Blocked { dur: end - bs });
                    }
                }
            }
        }
        let trace = bufs.map(|b| Trace::assemble(b, ClockDomain::Virtual));
        SimOutcome {
            behaviors,
            stats,
            halt,
            trace,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch<M: WireMessage>(
        topology: &Topology,
        stats: &mut ClusterStats,
        pending: &mut [BinaryHeap<Pending<M>>],
        priority_pending: &mut [BinaryHeap<Pending<M>>],
        link_free: &mut [Vec<SimTime>],
        link_fifo: &mut [Vec<SimTime>],
        blocked: &mut [bool],
        seq: &mut u64,
        src: Rank,
        outgoing: Vec<(Rank, Tag, M, SimTime)>,
        injector: &mut Option<FaultInjector>,
        bufs: &mut Option<Vec<TraceBuffer>>,
    ) {
        for (dst, tag, msg, send_time) in outgoing {
            if dst >= pending.len() {
                continue;
            }
            let link = topology.link(src, dst);
            let bytes = msg.wire_bytes();
            let priority = msg.priority();
            // Priority (out-of-band) messages do not contend for the link's
            // serialised transfer slot — they are tiny control signals.
            let start = if priority {
                send_time
            } else {
                send_time.max(link_free[src][dst])
            };
            let transfer = bytes as f64 / link.bandwidth_bps;
            let arrival = start + link.latency_s + transfer;
            if !priority {
                // The slot is consumed whether or not a fault later drops
                // the message: a dropped message still occupied the wire.
                link_free[src][dst] = start + transfer;
            }
            stats.nodes[src].messages_sent += 1;
            stats.nodes[src].bytes_sent += bytes;
            if msg.is_draft() {
                stats.nodes[src].draft_messages_sent += 1;
                stats.nodes[src].draft_bytes_sent += bytes;
            }
            match injector.as_mut() {
                None => {
                    // Fault-free fast path: one copy, no clone.
                    *seq += 1;
                    let entry = Pending {
                        arrival,
                        seq: *seq,
                        src,
                        tag,
                        msg,
                    };
                    if priority {
                        priority_pending[dst].push(entry);
                    } else {
                        pending[dst].push(entry);
                    }
                    blocked[dst] = false;
                }
                Some(inj) => {
                    let fate = inj.on_send(src, dst, send_time);
                    if !fate.faults.is_empty() {
                        stats.nodes[src].faults_injected += fate.faults.len() as u64;
                        if let Some(bufs) = bufs.as_mut() {
                            for kind in &fate.faults {
                                bufs[src].push(send_time, *kind);
                            }
                        }
                    }
                    for (extra, overtakes) in fate.copies {
                        // An overtaking (reordered) copy skips the link's
                        // serialisation queue, exactly like priority traffic.
                        // Every other copy stays FIFO on its link even when a
                        // delay fault stretches its flight time: later sends
                        // are clamped behind the latest in-order arrival.
                        let arrival = if overtakes {
                            send_time + link.latency_s + transfer + extra
                        } else if priority {
                            arrival + extra
                        } else {
                            let a = (arrival + extra).max(link_fifo[src][dst]);
                            link_fifo[src][dst] = a;
                            a
                        };
                        *seq += 1;
                        let entry = Pending {
                            arrival,
                            seq: *seq,
                            src,
                            tag,
                            msg: msg.clone(),
                        };
                        if priority {
                            priority_pending[dst].push(entry);
                        } else {
                            pending[dst].push(entry);
                        }
                        blocked[dst] = false;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;
    use std::any::Any;

    /// Test message: a counter plus a payload size used for wire accounting.
    #[derive(Debug, Clone)]
    struct Msg {
        hops: u32,
        bytes: u64,
    }
    impl WireMessage for Msg {
        fn wire_bytes(&self) -> u64 {
            self.bytes
        }
    }

    /// Relay rank: forwards each message to the next rank after charging
    /// `compute` seconds; the last rank sends back to rank 0.  Rank 0 counts
    /// round trips and finishes after `rounds`.
    struct Relay {
        rank: Rank,
        n: usize,
        compute: f64,
        rounds_left: u32,
        finished: bool,
        completion_times: Vec<SimTime>,
    }

    impl NodeBehavior<Msg> for Relay {
        fn on_start(&mut self, ctx: &mut dyn NodeCtx<Msg>) {
            if self.rank == 0 {
                ctx.send(
                    1,
                    0,
                    Msg {
                        hops: 0,
                        bytes: 1000,
                    },
                );
            }
        }
        fn on_message(&mut self, _src: Rank, _tag: Tag, msg: Msg, ctx: &mut dyn NodeCtx<Msg>) {
            if msg.hops == u32::MAX {
                self.finished = true;
                return;
            }
            ctx.elapse(self.compute);
            if self.rank == 0 {
                self.completion_times.push(ctx.now());
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    self.finished = true;
                    // Tell everyone else to finish.
                    for r in 1..self.n {
                        ctx.send(
                            r,
                            99,
                            Msg {
                                hops: u32::MAX,
                                bytes: 8,
                            },
                        );
                    }
                } else {
                    ctx.send(
                        1,
                        0,
                        Msg {
                            hops: 0,
                            bytes: 1000,
                        },
                    );
                }
            } else {
                let next = (self.rank + 1) % self.n;
                ctx.send(
                    next,
                    0,
                    Msg {
                        hops: msg.hops + 1,
                        bytes: msg.bytes,
                    },
                );
            }
        }
        fn is_finished(&self) -> bool {
            self.finished
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn relay_ring(n: usize, compute: f64, rounds: u32) -> Vec<Box<dyn NodeBehavior<Msg>>> {
        (0..n)
            .map(|r| {
                Box::new(Relay {
                    rank: r,
                    n,
                    compute,
                    rounds_left: rounds,
                    finished: false,
                    completion_times: Vec::new(),
                }) as Box<dyn NodeBehavior<Msg>>
            })
            .collect()
    }

    #[test]
    fn ring_completes_and_time_accumulates() {
        let topo = Topology::uniform(4, LinkSpec::new(1e-3, 1e6));
        let driver = SimDriver::new(topo);
        let out = driver.run(relay_ring(4, 0.01, 3));
        assert!(out.completed());
        // Each round: 4 hops × (1 ms latency + 1 ms transfer of 1000 B) + 4 × 10 ms compute
        // ≈ 48 ms; 3 rounds ≈ 144 ms.
        let expected_round = 4.0 * (0.001 + 0.001) + 4.0 * 0.01;
        assert!(
            (out.stats.total_time - 3.0 * expected_round).abs() < 0.01,
            "total_time = {}",
            out.stats.total_time
        );
    }

    #[test]
    fn determinism_across_runs() {
        let topo = Topology::uniform(5, LinkSpec::gigabit_ethernet());
        let t1 = SimDriver::new(topo.clone()).run(relay_ring(5, 0.002, 10));
        let t2 = SimDriver::new(topo).run(relay_ring(5, 0.002, 10));
        assert_eq!(t1.stats.total_time, t2.stats.total_time);
        assert_eq!(t1.stats.total_messages(), t2.stats.total_messages());
    }

    #[test]
    fn faster_interconnect_reduces_makespan() {
        let slow = SimDriver::new(Topology::uniform(4, LinkSpec::gigabit_ethernet()))
            .run(relay_ring(4, 0.0, 20));
        let fast = SimDriver::new(Topology::uniform(4, LinkSpec::infiniband_edr()))
            .run(relay_ring(4, 0.0, 20));
        assert!(slow.stats.total_time > 10.0 * fast.stats.total_time);
    }

    #[test]
    fn compute_dominated_is_insensitive_to_interconnect() {
        let slow = SimDriver::new(Topology::uniform(4, LinkSpec::gigabit_ethernet()))
            .run(relay_ring(4, 0.5, 2));
        let fast = SimDriver::new(Topology::uniform(4, LinkSpec::infiniband_edr()))
            .run(relay_ring(4, 0.5, 2));
        let ratio = slow.stats.total_time / fast.stats.total_time;
        assert!(ratio < 1.01, "ratio {ratio}");
    }

    #[test]
    fn stats_track_messages_and_bytes() {
        let topo = Topology::uniform(3, LinkSpec::infiniband_edr());
        let out = SimDriver::new(topo).run(relay_ring(3, 0.001, 2));
        assert!(out.completed());
        // Rank 0 sends 2 round-starting messages + 2 shutdown messages.
        assert_eq!(out.stats.node(0).messages_sent, 4);
        assert!(out.stats.node(0).bytes_sent >= 2 * 1000);
        assert!(out.stats.node(1).messages_received >= 2);
    }

    #[test]
    fn busy_time_equals_charged_compute() {
        let topo = Topology::uniform(2, LinkSpec::infiniband_edr());
        let out = SimDriver::new(topo).run(relay_ring(2, 0.25, 2));
        // Rank 1 relays 2 messages, charging 0.25 s each.
        assert!((out.stats.node(1).busy_time - 0.5).abs() < 1e-9);
    }

    #[test]
    fn max_time_aborts_incomplete_runs() {
        let topo = Topology::uniform(4, LinkSpec::new(0.5, 1e3));
        let out = SimDriver::new(topo)
            .with_max_time(0.1)
            .run(relay_ring(4, 0.0, 100));
        assert!(!out.completed());
        assert_eq!(out.halt, HaltReason::TimeLimit);
    }

    /// A rank that performs idle work a fixed number of times.
    struct IdleWorker {
        remaining: u32,
        finished: bool,
    }
    impl NodeBehavior<Msg> for IdleWorker {
        fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {}
        fn on_idle(&mut self, ctx: &mut dyn NodeCtx<Msg>) -> bool {
            if self.remaining == 0 {
                self.finished = true;
                return false;
            }
            self.remaining -= 1;
            ctx.elapse(0.01);
            true
        }
        fn is_finished(&self) -> bool {
            self.finished
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn idle_work_advances_virtual_time() {
        let topo = Topology::uniform(1, LinkSpec::loopback());
        let out = SimDriver::new(topo).run(vec![Box::new(IdleWorker {
            remaining: 7,
            finished: false,
        }) as Box<dyn NodeBehavior<Msg>>]);
        assert!(out.completed());
        assert!((out.stats.total_time - 0.07).abs() < 1e-9);
        assert_eq!(out.stats.node(0).idle_work, 7);
    }

    #[test]
    fn deadlock_is_detected_as_incomplete() {
        // A single rank that never finishes and never has work.
        struct Stuck;
        impl NodeBehavior<Msg> for Stuck {
            fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {}
            fn is_finished(&self) -> bool {
                false
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = SimDriver::new(Topology::uniform(1, LinkSpec::loopback()))
            .run(vec![Box::new(Stuck) as Box<dyn NodeBehavior<Msg>>]);
        assert!(!out.completed());
        assert_eq!(out.halt, HaltReason::Deadlock);
    }

    #[test]
    fn link_serialisation_preserves_order() {
        // Rank 0 sends a large message then a tiny one to rank 1; the tiny
        // one must not overtake the large one.
        struct Sender {
            done: bool,
        }
        struct Receiver {
            order: Vec<u32>,
            finished: bool,
        }
        impl NodeBehavior<Msg> for Sender {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx<Msg>) {
                ctx.send(
                    1,
                    0,
                    Msg {
                        hops: 1,
                        bytes: 10_000_000,
                    },
                );
                ctx.send(1, 0, Msg { hops: 2, bytes: 1 });
                self.done = true;
            }
            fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {}
            fn is_finished(&self) -> bool {
                self.done
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        impl NodeBehavior<Msg> for Receiver {
            fn on_message(&mut self, _: Rank, _: Tag, msg: Msg, _: &mut dyn NodeCtx<Msg>) {
                self.order.push(msg.hops);
                if self.order.len() == 2 {
                    self.finished = true;
                }
            }
            fn is_finished(&self) -> bool {
                self.finished
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let out = SimDriver::new(Topology::uniform(2, LinkSpec::gigabit_ethernet())).run(vec![
            Box::new(Sender { done: false }) as Box<dyn NodeBehavior<Msg>>,
            Box::new(Receiver {
                order: Vec::new(),
                finished: false,
            }) as Box<dyn NodeBehavior<Msg>>,
        ]);
        assert!(out.completed());
        let recv = out.behaviors[1]
            .as_any()
            .downcast_ref::<Receiver>()
            .unwrap();
        assert_eq!(recv.order, vec![1, 2]);
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let topo = Topology::uniform(3, LinkSpec::infiniband_edr());
        let out = SimDriver::new(topo).run(relay_ring(3, 0.001, 2));
        assert!(out.trace.is_none());
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn traced_run_records_wire_and_compute_events() {
        let topo = Topology::uniform(4, LinkSpec::new(1e-3, 1e6));
        let out = SimDriver::new(topo)
            .with_trace(TraceConfig::default())
            .run(relay_ring(4, 0.01, 3));
        assert!(out.completed());
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.n_ranks(), 4);
        assert_eq!(trace.domain(), ClockDomain::Virtual);
        assert_eq!(trace.dropped_total(), 0);
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WireSend { .. }))
            .count();
        let recvs = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WireRecv { .. }))
            .count();
        // Every simulated message is recorded once at each end.
        assert_eq!(sends as u64, out.stats.total_messages());
        assert_eq!(recvs as u64, out.stats.total_messages());
        // Compute spans sum to the charged busy time.
        let compute: f64 = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Compute { dur } => Some(dur),
                _ => None,
            })
            .sum();
        let busy: f64 = (0..4).map(|r| out.stats.node(r).busy_time).sum();
        assert!((compute - busy).abs() < 1e-9, "{compute} vs {busy}");
        // Ranks 1..3 wait between rounds: Blocked spans must appear.
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Blocked { .. })));
        // Every rank terminates its track.
        let fins = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RankFinished))
            .count();
        assert_eq!(fins, 4);
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn tracing_does_not_perturb_the_schedule() {
        let topo = Topology::uniform(5, LinkSpec::gigabit_ethernet());
        let plain = SimDriver::new(topo.clone()).run(relay_ring(5, 0.002, 10));
        let traced = SimDriver::new(topo)
            .with_trace(TraceConfig::default())
            .run(relay_ring(5, 0.002, 10));
        assert_eq!(plain.stats.total_time, traced.stats.total_time);
        assert_eq!(plain.stats.total_messages(), traced.stats.total_messages());
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn trace_log_is_reproducible() {
        let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
        let run = || {
            SimDriver::new(topo.clone())
                .with_trace(TraceConfig::default())
                .run(relay_ring(4, 0.003, 5))
                .trace
                .unwrap()
                .to_log()
        };
        assert_eq!(run(), run());
    }

    // ----- fault injection ---------------------------------------------------

    use crate::fault::LinkFaults;

    #[test]
    fn empty_fault_plan_leaves_the_schedule_untouched() {
        let topo = Topology::uniform(5, LinkSpec::gigabit_ethernet());
        let plain = SimDriver::new(topo.clone()).run(relay_ring(5, 0.002, 10));
        let faulted = SimDriver::new(topo)
            .with_faults(FaultPlan::seeded(42))
            .run(relay_ring(5, 0.002, 10));
        assert!(faulted.completed());
        assert_eq!(plain.stats.total_time, faulted.stats.total_time);
        assert_eq!(faulted.stats.total_faults_injected(), 0);
    }

    #[test]
    fn full_drop_deadlocks_and_counts_faults() {
        let plan = FaultPlan::seeded(1).on_link(0, 1, LinkFaults::drop_all());
        let out = SimDriver::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()))
            .with_faults(plan)
            .run(relay_ring(2, 0.001, 3));
        assert_eq!(out.halt, HaltReason::Deadlock);
        assert!(!out.completed());
        assert!(out.stats.node(0).faults_injected >= 1);
        // The dropped message was still sent (and charged to the wire) —
        // it just never arrived.
        assert_eq!(out.stats.node(0).messages_sent, 1);
        assert_eq!(out.stats.node(1).messages_received, 0);
    }

    #[test]
    fn kill_halts_as_rank_killed() {
        let plan = FaultPlan::seeded(2).kill_at(1, 0.0);
        let out = SimDriver::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()))
            .with_faults(plan)
            .with_trace(TraceConfig::default())
            .run(relay_ring(2, 0.001, 3));
        assert_eq!(out.halt, HaltReason::RankKilled);
        assert_eq!(out.stats.node(1).faults_injected, 1);
        #[cfg(feature = "trace")]
        {
            let trace = out.trace.expect("trace requested");
            assert!(trace
                .events()
                .iter()
                .any(|e| e.rank == 1 && matches!(e.kind, EventKind::RankKilled)));
        }
    }

    #[test]
    fn delay_faults_slow_the_run_deterministically() {
        let topo = Topology::uniform(2, LinkSpec::gigabit_ethernet());
        let plan = || FaultPlan::seeded(7).on_path(0, 1, LinkFaults::delay(1.0, 0.05, 0.06));
        let base = SimDriver::new(topo.clone()).run(relay_ring(2, 0.001, 3));
        let a = SimDriver::new(topo.clone())
            .with_faults(plan())
            .run(relay_ring(2, 0.001, 3));
        let b = SimDriver::new(topo)
            .with_faults(plan())
            .run(relay_ring(2, 0.001, 3));
        assert!(a.completed());
        assert_eq!(a.stats.total_time, b.stats.total_time);
        assert!(a.stats.total_time > base.stats.total_time + 0.04);
        assert!(a.stats.total_faults_injected() > 0);
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        struct Once {
            done: bool,
        }
        impl NodeBehavior<Msg> for Once {
            fn on_start(&mut self, ctx: &mut dyn NodeCtx<Msg>) {
                ctx.send(
                    1,
                    0,
                    Msg {
                        hops: 1,
                        bytes: 100,
                    },
                );
                self.done = true;
            }
            fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {}
            fn is_finished(&self) -> bool {
                self.done
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Count {
            got: u32,
        }
        impl NodeBehavior<Msg> for Count {
            fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {
                self.got += 1;
            }
            fn is_finished(&self) -> bool {
                self.got >= 2
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let plan = FaultPlan::seeded(3).on_link(0, 1, LinkFaults::default().and_duplicate(1.0));
        let out = SimDriver::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()))
            .with_faults(plan)
            .run(vec![
                Box::new(Once { done: false }) as Box<dyn NodeBehavior<Msg>>,
                Box::new(Count { got: 0 }) as Box<dyn NodeBehavior<Msg>>,
            ]);
        assert!(out.completed());
        assert_eq!(out.stats.node(0).messages_sent, 1);
        assert_eq!(out.stats.node(1).messages_received, 2);
        assert_eq!(out.stats.node(0).faults_injected, 1);
    }

    #[test]
    fn pause_defers_activations_to_window_end() {
        let plan = FaultPlan::seeded(4).pause(0, 0.0, 1.0);
        let out = SimDriver::new(Topology::uniform(1, LinkSpec::loopback()))
            .with_faults(plan)
            .run(vec![Box::new(IdleWorker {
                remaining: 7,
                finished: false,
            }) as Box<dyn NodeBehavior<Msg>>]);
        assert!(out.completed());
        assert!(
            (out.stats.total_time - 1.07).abs() < 1e-9,
            "total_time = {}",
            out.stats.total_time
        );
        assert_eq!(out.stats.node(0).faults_injected, 1);
    }

    #[test]
    fn wake_requests_only_honored_with_faults_armed() {
        struct Alarm {
            fired: bool,
        }
        impl NodeBehavior<Msg> for Alarm {
            fn on_message(&mut self, _: Rank, _: Tag, _: Msg, _: &mut dyn NodeCtx<Msg>) {}
            fn on_idle(&mut self, ctx: &mut dyn NodeCtx<Msg>) -> bool {
                if ctx.now() >= 0.5 {
                    self.fired = true;
                    true
                } else {
                    ctx.request_wake(0.5);
                    false
                }
            }
            fn is_finished(&self) -> bool {
                self.fired
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let topo = Topology::uniform(1, LinkSpec::loopback());
        // Without a fault schedule the hint is ignored — fault-free
        // schedules must stay bit-identical to what they always were.
        let plain = SimDriver::new(topo.clone()).run(vec![
            Box::new(Alarm { fired: false }) as Box<dyn NodeBehavior<Msg>>
        ]);
        assert_eq!(plain.halt, HaltReason::Deadlock);
        // Any non-empty schedule arms wake-ups, even if none of its faults
        // ever fire.
        let armed = FaultPlan::seeded(5).pause(0, 1e8, 1e8 + 1.0);
        let out = SimDriver::new(topo).with_faults(armed).run(vec![
            Box::new(Alarm { fired: false }) as Box<dyn NodeBehavior<Msg>>,
        ]);
        assert_eq!(out.halt, HaltReason::Finished);
        assert!((out.stats.total_time - 0.5).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore)]
    fn chaos_runs_replay_bit_identically() {
        let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
        let plan = FaultPlan::seeded(11)
            .on_path(
                0,
                1,
                LinkFaults::drop(0.2)
                    .and_duplicate(0.2)
                    .and_reorder(0.2, 0.01),
            )
            .on_link(2, 3, LinkFaults::delay(0.5, 0.001, 0.002))
            .pause(2, 0.01, 0.02)
            .kill_at(3, 0.05);
        let run = || {
            let out = SimDriver::new(topo.clone())
                .with_faults(plan.clone())
                .with_trace(TraceConfig::default())
                .run(relay_ring(4, 0.003, 5));
            (out.halt, out.stats.total_time, out.trace.unwrap().to_log())
        };
        let (halt_a, time_a, log_a) = run();
        let (halt_b, time_b, log_b) = run();
        assert_eq!(halt_a, halt_b);
        assert_eq!(time_a, time_b);
        assert_eq!(log_a, log_b);
    }
}
