//! Deterministic fault injection for the cluster drivers.
//!
//! A [`FaultPlan`] is a *seeded, declarative chaos schedule*: per-link
//! message drop/delay/duplicate/reorder probabilities, rank pause windows
//! (stragglers) and rank kills at a virtual time or event count.  Attached
//! to [`SimDriver::with_faults`](crate::sim::SimDriver::with_faults) the
//! plan perturbs the discrete-event schedule **deterministically** — the
//! same plan over the same run replays bit-identically, FoundationDB-style
//! — so every failure a test finds is a failure it can reproduce.  The
//! threaded driver supports a best-effort subset (drop/delay/duplicate on
//! the send path) via
//! [`ThreadedDriver::with_faults`](crate::threaded::ThreadedDriver::with_faults).
//!
//! Every injected fault is surfaced twice: counted into
//! [`NodeStats::faults_injected`](crate::NodeStats::faults_injected) and —
//! when a recorder is attached — recorded as an
//! [`EventKind::FaultInjected`](pi_trace::EventKind::FaultInjected) /
//! [`EventKind::RankKilled`](pi_trace::EventKind::RankKilled) trace event,
//! so pipeline bubbles caused by the schedule are cause-attributed.
//!
//! ```
//! use pi_cluster::{FaultPlan, LinkFaults};
//!
//! // Drop 30 % of draft traffic head <-> rank 1, kill rank 1 at t = 4 s.
//! let plan = FaultPlan::seeded(7)
//!     .on_link(0, 1, LinkFaults::drop(0.3))
//!     .on_link(1, 0, LinkFaults::drop(0.3))
//!     .kill_at(1, 4.0);
//! assert!(!plan.is_empty());
//! ```

use crate::{Rank, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault probabilities and distributions for one directed link.
///
/// All probabilities are in `[0, 1]` and evaluated independently per
/// message, in a fixed order (drop, then delay, then duplicate, then
/// reorder) from the plan's seeded generator.  The window `[from, until)`
/// restricts the faults to a span of driver time; the default window is
/// always-on.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability that a message is dropped in transit (it still occupies
    /// the link; it is simply never delivered).
    pub drop_prob: f64,
    /// Probability that a message is delivered with extra latency.
    pub delay_prob: f64,
    /// Extra latency range in seconds, sampled uniformly when a delay
    /// fires.
    pub delay_s: (f64, f64),
    /// Probability that a message is delivered twice (the duplicate arrives
    /// one delay-range sample later).
    pub duplicate_prob: f64,
    /// Probability that a message may overtake earlier traffic on its link:
    /// its arrival gets a uniform jitter in `[0, reorder_jitter_s)` *and*
    /// it skips the link-serialisation queue.
    pub reorder_prob: f64,
    /// Jitter bound for reordered messages, seconds.
    pub reorder_jitter_s: f64,
    /// Start of the active window (inclusive), driver seconds.
    pub from: SimTime,
    /// End of the active window (exclusive), driver seconds.
    pub until: SimTime,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_s: (0.0, 0.0),
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_jitter_s: 0.0,
            from: 0.0,
            until: f64::INFINITY,
        }
    }
}

impl LinkFaults {
    /// Drops each message with probability `p`.
    pub fn drop(p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::default()
        }
    }

    /// Drops every message (a dead link).
    pub fn drop_all() -> Self {
        Self::drop(1.0)
    }

    /// Delays each message with probability `p` by a uniform sample from
    /// `[lo, hi)` seconds.
    pub fn delay(p: f64, lo: f64, hi: f64) -> Self {
        Self {
            delay_prob: p,
            delay_s: (lo, hi),
            ..Self::default()
        }
    }

    /// Adds a duplicate-delivery probability.
    pub fn and_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Adds a reorder probability with the given jitter bound.
    pub fn and_reorder(mut self, p: f64, jitter_s: f64) -> Self {
        self.reorder_prob = p;
        self.reorder_jitter_s = jitter_s;
        self
    }

    /// Restricts the faults to the window `[from, until)`.
    pub fn during(mut self, from: SimTime, until: SimTime) -> Self {
        self.from = from;
        self.until = until;
        self
    }

    fn active_at(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }

    fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
    }
}

/// When a rank kill fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KillTrigger {
    /// Kill once driver time reaches this many seconds.
    AtTime(SimTime),
    /// Kill once the driver has processed this many events (simulator
    /// only; the threaded driver ignores event-count kills).
    AtEvent(u64),
}

/// A seeded, declarative chaos schedule for one cluster run.
///
/// Build one with the fluent constructors, then attach it to a driver:
/// [`SimDriver::with_faults`](crate::sim::SimDriver::with_faults) supports
/// the full vocabulary; the threaded driver's best-effort subset covers the
/// per-link message faults.  All randomness flows from [`FaultPlan::seed`]
/// through one generator consumed in deterministic schedule order, so a
/// plan replayed over the same run yields a bit-identical outcome —
/// including its trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision the plan makes.
    pub seed: u64,
    links: Vec<(Rank, Rank, LinkFaults)>,
    pauses: Vec<(Rank, SimTime, SimTime)>,
    kills: Vec<(Rank, KillTrigger)>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Adds faults to the directed link `src -> dst`.
    pub fn on_link(mut self, src: Rank, dst: Rank, faults: LinkFaults) -> Self {
        self.links.push((src, dst, faults));
        self
    }

    /// Adds the same faults to both directions between `a` and `b` — the
    /// usual way to degrade a full draft path.
    pub fn on_path(self, a: Rank, b: Rank, faults: LinkFaults) -> Self {
        self.on_link(a, b, faults.clone()).on_link(b, a, faults)
    }

    /// Pauses `rank` (straggler) over the window `[from, until)`: any
    /// activation falling inside the window is deferred to its end.
    pub fn pause(mut self, rank: Rank, from: SimTime, until: SimTime) -> Self {
        self.pauses.push((rank, from, until));
        self
    }

    /// Kills `rank` once driver time reaches `at` seconds.  A killed rank
    /// is never activated again; its queued messages are discarded and
    /// traffic addressed to it is black-holed.
    pub fn kill_at(mut self, rank: Rank, at: SimTime) -> Self {
        self.kills.push((rank, KillTrigger::AtTime(at)));
        self
    }

    /// Kills `rank` once the simulator has processed `n` events.
    pub fn kill_at_event(mut self, rank: Rank, n: u64) -> Self {
        self.kills.push((rank, KillTrigger::AtEvent(n)));
        self
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.links.iter().all(|(_, _, f)| f.is_noop())
            && self.pauses.is_empty()
            && self.kills.is_empty()
    }

    /// The ranks this plan kills (in declaration order).
    pub fn killed_ranks(&self) -> Vec<Rank> {
        self.kills.iter().map(|&(r, _)| r).collect()
    }
}

/// The fate of one message passed through the injector.
#[derive(Debug, Clone, PartialEq)]
pub struct SendFate {
    /// One entry per delivered copy: `(extra_delay_s, overtakes)`.  Empty
    /// means the message was dropped; two entries mean it was duplicated.
    /// `overtakes` lifts the per-link FIFO serialisation for that copy.
    pub copies: Vec<(f64, bool)>,
    /// Faults this decision injected (0 for a clean pass-through).
    pub faults: Vec<crate::EventKind>,
}

impl SendFate {
    fn clean() -> Self {
        Self {
            copies: vec![(0.0, false)],
            faults: Vec::new(),
        }
    }
}

/// Runtime state of a [`FaultPlan`] over one run: the seeded generator,
/// which kills/pauses have fired, and which ranks are dead.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    killed: Vec<bool>,
    kill_fired: Vec<bool>,
    pause_noted: Vec<bool>,
}

impl FaultInjector {
    /// Instantiates the plan for a `world`-rank cluster.
    pub fn new(plan: FaultPlan, world: usize) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        let kill_fired = vec![false; plan.kills.len()];
        let pause_noted = vec![false; plan.pauses.len()];
        Self {
            plan,
            rng,
            killed: vec![false; world],
            kill_fired,
            pause_noted,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `rank` has been killed.
    pub fn is_killed(&self, rank: Rank) -> bool {
        self.killed.get(rank).copied().unwrap_or(false)
    }

    /// Decides the fate of a message sent `src -> dst` at time `now`.
    /// Consumes randomness only for links the plan names, so unfaulted
    /// links never perturb the stream.
    pub fn on_send(&mut self, src: Rank, dst: Rank, now: SimTime) -> SendFate {
        use pi_trace::{EventKind, FaultKind};
        if self.is_killed(dst) {
            // Black-holed, not counted: the kill was already recorded.
            return SendFate {
                copies: Vec::new(),
                faults: Vec::new(),
            };
        }
        let mut fate = SendFate::clean();
        for (s, d, f) in &self.plan.links {
            if *s != src || *d != dst || !f.active_at(now) || f.is_noop() {
                continue;
            }
            let fault = |kind| EventKind::FaultInjected {
                fault: kind,
                peer: dst as u32,
            };
            if f.drop_prob > 0.0 && self.rng.gen_bool(f.drop_prob.min(1.0)) {
                fate.copies.clear();
                fate.faults.push(fault(FaultKind::Drop));
                return fate;
            }
            if f.delay_prob > 0.0 && self.rng.gen_bool(f.delay_prob.min(1.0)) {
                let (lo, hi) = f.delay_s;
                let extra = if hi > lo {
                    self.rng.gen_range(lo..hi)
                } else {
                    lo
                };
                fate.copies[0].0 += extra;
                fate.faults.push(fault(FaultKind::Delay));
            }
            if f.duplicate_prob > 0.0 && self.rng.gen_bool(f.duplicate_prob.min(1.0)) {
                let (lo, hi) = f.delay_s;
                let extra = if hi > lo {
                    self.rng.gen_range(lo..hi)
                } else {
                    hi.max(0.0)
                };
                let base = fate.copies[0];
                fate.copies.push((base.0 + extra, base.1));
                fate.faults.push(fault(FaultKind::Duplicate));
            }
            if f.reorder_prob > 0.0 && self.rng.gen_bool(f.reorder_prob.min(1.0)) {
                let jitter = if f.reorder_jitter_s > 0.0 {
                    self.rng.gen_range(0.0..f.reorder_jitter_s)
                } else {
                    0.0
                };
                for copy in &mut fate.copies {
                    copy.0 += jitter;
                    copy.1 = true;
                }
                fate.faults.push(fault(FaultKind::Reorder));
            }
        }
        fate
    }

    /// Fires every kill due at `(now, events)` and returns the newly killed
    /// ranks.  Idempotent: a fired kill never fires again.
    pub fn due_kills(&mut self, now: SimTime, events: u64) -> Vec<Rank> {
        let mut newly = Vec::new();
        for (i, &(rank, trigger)) in self.plan.kills.iter().enumerate() {
            if self.kill_fired[i] || self.is_killed(rank) {
                continue;
            }
            let due = match trigger {
                KillTrigger::AtTime(t) => now >= t,
                KillTrigger::AtEvent(n) => events >= n,
            };
            if due {
                self.kill_fired[i] = true;
                if let Some(k) = self.killed.get_mut(rank) {
                    *k = true;
                }
                newly.push(rank);
            }
        }
        newly
    }

    /// The earliest pending time-triggered kill, for drivers that advance
    /// time in jumps and must not overshoot a kill.
    pub fn next_kill_time(&self) -> Option<SimTime> {
        self.plan
            .kills
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.kill_fired[*i])
            .filter_map(|(_, &(_, trigger))| match trigger {
                KillTrigger::AtTime(t) => Some(t),
                KillTrigger::AtEvent(_) => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// If `rank` activating at `t` falls inside a pause window, returns the
    /// deferred activation time and whether this is the window's first
    /// deferral (callers record the `Pause` fault exactly once per window).
    pub fn pause_deferral(&mut self, rank: Rank, t: SimTime) -> Option<(SimTime, bool)> {
        let mut deferred: Option<(SimTime, bool)> = None;
        for (i, &(r, from, until)) in self.plan.pauses.iter().enumerate() {
            if r == rank && t >= from && t < until {
                let first = !self.pause_noted[i];
                self.pause_noted[i] = true;
                let candidate = until;
                deferred = Some(match deferred {
                    Some((prev, was_first)) => (prev.max(candidate), was_first || first),
                    None => (candidate, first),
                });
            }
        }
        deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::seeded(1);
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan, 4);
        let fate = inj.on_send(0, 1, 0.0);
        assert_eq!(fate.copies, vec![(0.0, false)]);
        assert!(fate.faults.is_empty());
        assert!(inj.due_kills(1e9, u64::MAX).is_empty());
        assert!(inj.pause_deferral(0, 5.0).is_none());
    }

    #[test]
    fn full_drop_kills_every_message_in_window() {
        let plan = FaultPlan::seeded(2).on_link(0, 1, LinkFaults::drop_all().during(1.0, 2.0));
        let mut inj = FaultInjector::new(plan, 2);
        // Outside the window: clean.
        assert_eq!(inj.on_send(0, 1, 0.5).copies.len(), 1);
        // Inside: dropped, and the fault is reported.
        let fate = inj.on_send(0, 1, 1.5);
        assert!(fate.copies.is_empty());
        assert_eq!(fate.faults.len(), 1);
        // Other direction untouched.
        assert_eq!(inj.on_send(1, 0, 1.5).copies.len(), 1);
    }

    #[test]
    fn duplicates_and_delays_accumulate_copies() {
        let plan =
            FaultPlan::seeded(3).on_link(0, 1, LinkFaults::delay(1.0, 0.5, 0.6).and_duplicate(1.0));
        let mut inj = FaultInjector::new(plan, 2);
        let fate = inj.on_send(0, 1, 0.0);
        assert_eq!(fate.copies.len(), 2);
        assert!(fate.copies[0].0 >= 0.5 && fate.copies[0].0 < 0.6);
        assert!(fate.copies[1].0 > fate.copies[0].0);
        assert_eq!(fate.faults.len(), 2);
    }

    #[test]
    fn reorder_marks_copies_as_overtaking() {
        let plan = FaultPlan::seeded(4).on_link(0, 1, LinkFaults::default().and_reorder(1.0, 0.25));
        let mut inj = FaultInjector::new(plan, 2);
        let fate = inj.on_send(0, 1, 0.0);
        assert_eq!(fate.copies.len(), 1);
        assert!(fate.copies[0].1, "reordered copies must overtake");
        assert!(fate.copies[0].0 < 0.25);
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = || FaultPlan::seeded(9).on_path(0, 1, LinkFaults::drop(0.5).and_duplicate(0.3));
        let mut a = FaultInjector::new(plan(), 2);
        let mut b = FaultInjector::new(plan(), 2);
        for i in 0..64 {
            let t = i as f64 * 0.01;
            assert_eq!(a.on_send(0, 1, t), b.on_send(0, 1, t));
            assert_eq!(a.on_send(1, 0, t), b.on_send(1, 0, t));
        }
    }

    #[test]
    fn kills_fire_once_and_black_hole_traffic() {
        let plan = FaultPlan::seeded(5).kill_at(1, 2.0).kill_at_event(2, 100);
        assert_eq!(plan.killed_ranks(), vec![1, 2]);
        let mut inj = FaultInjector::new(plan, 3);
        assert!(inj.due_kills(1.0, 0).is_empty());
        assert_eq!(inj.next_kill_time(), Some(2.0));
        assert_eq!(inj.due_kills(2.0, 0), vec![1]);
        assert!(inj.is_killed(1));
        assert!(inj.due_kills(3.0, 0).is_empty(), "kills fire once");
        assert_eq!(inj.next_kill_time(), None);
        // Messages to a dead rank vanish without being counted as new faults.
        let fate = inj.on_send(0, 1, 3.0);
        assert!(fate.copies.is_empty() && fate.faults.is_empty());
        // Event-count trigger.
        assert_eq!(inj.due_kills(3.0, 100), vec![2]);
    }

    #[test]
    fn pauses_defer_to_window_end_and_note_once() {
        let plan = FaultPlan::seeded(6).pause(1, 1.0, 3.0);
        let mut inj = FaultInjector::new(plan, 2);
        assert!(inj.pause_deferral(1, 0.5).is_none());
        assert_eq!(inj.pause_deferral(1, 1.5), Some((3.0, true)));
        assert_eq!(inj.pause_deferral(1, 2.0), Some((3.0, false)));
        assert!(inj.pause_deferral(0, 1.5).is_none());
        assert!(inj.pause_deferral(1, 3.0).is_none());
    }
}
