//! Workspace-level integration tests of iteration-level cross-request
//! batching: the `StepSession` step loop and `Server::serve_stepped`.
//!
//! The load-bearing property is **byte-identity**: fusing concurrent
//! requests into forest batches changes the roofline, never the tokens.
//! Every cell of the deployment matrix — draft placement (head-hosted vs
//! dedicated rank) × micro-batch shape (chain vs tree) × KV backing (paged
//! pool vs flat caches) × execution mode (`Sim` vs `Real`) — must serve a
//! concurrent stream with every request's token stream identical to that
//! request decoded alone.  A property test then drives random join/leave
//! schedules through the step loop, and a forest-batch audit checks that
//! `Batch::level_groups` never mixes rows across lanes.

use pipeinfer::prelude::*;
use pipeinfer::serve::MixedWorkload;
use proptest::prelude::*;
use std::sync::Arc;

fn sim_mode(n: usize) -> ExecutionMode {
    ExecutionMode::Sim {
        pair: ModelPair::dolphin_tinyllama(),
        cluster: ClusterSpec::cluster_c(n),
        oracle_seed: 42,
    }
}

fn real_mode(seed: u64) -> ExecutionMode {
    let cfg = ModelConfig::tiny_llama(64, 4);
    let target = Arc::new(Model::random(cfg.clone(), seed));
    let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
    ExecutionMode::Real { target, draft }
}

fn gen(fill: Token, prompt_len: usize, n_generate: usize) -> GenConfig {
    GenConfig {
        prompt: vec![fill; prompt_len],
        n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 4096,
    }
}

/// Decodes one request alone through the same step loop (a single-request
/// session over the same prepared deployment) — the reference every fused
/// stream must match byte for byte.
fn solo_stepped(prepared: &PreparedDeployment, config: &GenConfig) -> Vec<Token> {
    let mut session = prepared.begin_session();
    let id = session.admit(config);
    let mut guard = 0;
    while session.active() > 0 {
        guard += 1;
        assert!(guard < 10_000, "solo session did not converge");
        session.step_cohort();
    }
    session.take_output(id).expect("solo output").record.tokens
}

/// Serves `configs` concurrently through the fused step loop and asserts
/// each stream equals its solo-stepped reference; returns the report.
fn assert_fused_matches_solo(server: &Server, configs: &[GenConfig], label: &str) -> ServeReport {
    let requests: Vec<Request> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| Request::new(i as u64, c.clone(), 0.0))
        .collect();
    let report = server.serve_stepped(requests);
    assert_eq!(report.len(), configs.len(), "{label}");
    for (i, config) in configs.iter().enumerate() {
        let served = &report.completion(i as u64).unwrap().output.record.tokens;
        let solo = solo_stepped(server.prepared(), config);
        assert_eq!(
            served, &solo,
            "{label}: request {i} diverged from its solo decode under fusion"
        );
    }
    assert!(
        report.mean_cohort_width() > 1.0,
        "{label}: stream never fused (width {})",
        report.mean_cohort_width()
    );
    report
}

/// The four PipeInfer layout variants: draft placement × micro-batch shape.
fn layout_variants() -> Vec<(&'static str, PipeInferConfig)> {
    vec![
        ("head-hosted/chain", PipeInferConfig::paper_default()),
        ("head-hosted/tree", PipeInferConfig::tree_micro()),
        ("dedicated/chain", PipeInferConfig::dedicated_draft_rank()),
        (
            "dedicated/tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
        ),
    ]
}

#[test]
fn forest_batching_is_byte_identical_across_the_sim_matrix() {
    let configs = [gen(5, 12, 16), gen(9, 8, 12), gen(3, 10, 20), gen(7, 6, 8)];
    for (name, config) in layout_variants() {
        for pooled in [false, true] {
            let mut prepared =
                Deployment::new(PipeInferStrategy::new(config.clone())).prepare(&sim_mode(4), 4);
            if pooled {
                prepared = prepared.with_kv_pool(KvPagePool::new(KvPoolConfig {
                    tokens_per_page: 8,
                    n_pages: 256,
                }));
            }
            let kv = if pooled { "pooled" } else { "flat" };
            let server = Server::new(prepared, ServerConfig { max_in_flight: 8 });
            assert_fused_matches_solo(&server, &configs, &format!("sim/{name}/{kv}"));
        }
    }
}

#[test]
fn forest_batching_is_byte_identical_across_the_real_matrix() {
    // Real execution is the expensive half of the matrix: tiny models,
    // short streams, but every placement × shape × KV-backing cell.
    let configs = [gen(5, 6, 6), gen(9, 4, 8), gen(3, 5, 4)];
    for (name, config) in layout_variants() {
        for pooled in [false, true] {
            let mut prepared =
                Deployment::new(PipeInferStrategy::new(config.clone())).prepare(&real_mode(11), 4);
            if pooled {
                prepared = prepared.with_kv_pool(KvPagePool::new(KvPoolConfig {
                    tokens_per_page: 8,
                    n_pages: 128,
                }));
            }
            let kv = if pooled { "pooled" } else { "flat" };
            let server = Server::new(prepared, ServerConfig { max_in_flight: 8 });
            assert_fused_matches_solo(&server, &configs, &format!("real/{name}/{kv}"));
        }
    }
}

#[test]
fn synchronous_strategies_match_their_solo_runs_exactly() {
    // For the synchronous strategies the solo reference is stronger still:
    // the fused stream must equal `PreparedDeployment::run` itself, in both
    // execution modes.
    let sim_configs = [gen(5, 12, 16), gen(9, 8, 12), gen(3, 10, 20)];
    let real_configs = [gen(5, 6, 6), gen(9, 4, 8)];
    let strategies: Vec<(&str, Deployment)> = vec![
        ("iterative", Deployment::new(IterativeStrategy)),
        ("speculative", Deployment::new(SpeculativeStrategy)),
        ("tree", Deployment::new(TreeSpeculationStrategy::default())),
    ];
    for (name, deployment) in &strategies {
        for (mode, configs) in [
            (sim_mode(4), &sim_configs[..]),
            (real_mode(11), &real_configs[..]),
        ] {
            let n = match &mode {
                ExecutionMode::Sim { .. } => 4,
                ExecutionMode::Real { .. } => 2,
            };
            let prepared = deployment.prepare(&mode, n);
            let server = Server::new(prepared, ServerConfig { max_in_flight: 8 });
            let report = assert_fused_matches_solo(&server, configs, name);
            for (i, config) in configs.iter().enumerate() {
                let solo = server.prepared().run(config);
                assert_eq!(
                    report.completion(i as u64).unwrap().output.record.tokens,
                    solo.record.tokens,
                    "{name}: fused stream diverged from PreparedDeployment::run"
                );
            }
        }
    }
}

/// Audits one forest batch.  Groups are *supposed* to span lanes — that is
/// the fused GEMM — so the safety invariant is pairwise: within a group, a
/// later entry must never attend over an earlier entry's cell, which can
/// only happen between rows of the **same** lane (same KV cache) at
/// non-increasing positions over a shared sequence.  Cross-lane rows are
/// always independent; same-lane rows must keep the sequential order's
/// visibility.  The groups must also tile the batch exactly, in order.
fn audit_forest(forest: &pipeinfer::model::Batch) {
    let entries = forest.entries();
    let mut next = 0;
    for group in forest.level_groups() {
        assert!(!group.is_empty());
        assert_eq!(group.start, next, "groups must tile the batch");
        next = group.end;
        for (off, late) in entries[group.clone()].iter().enumerate().skip(1) {
            for early in &entries[group.start..group.start + off] {
                let conflict = late.lane == early.lane
                    && late.pos <= early.pos
                    && late.seq_ids.iter().any(|s| early.seq_ids.contains(s));
                assert!(
                    !conflict,
                    "group {group:?}: row at pos {} (lane {}) would see the \
                     not-yet-stored cell at pos {} of its own sequence",
                    late.pos, late.lane, early.pos
                );
            }
        }
    }
    assert_eq!(next, entries.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random join/leave schedules: arrivals, lengths and budgets drawn at
    /// random, served through the fused step loop with a bounded window so
    /// requests genuinely join and leave mid-stream.  Every request's
    /// stream must equal its solo-stepped decode, and the fused path must
    /// agree with the request-granularity path on every token.
    #[test]
    fn prop_random_join_leave_schedules_never_mix_streams(
        n_requests in 2usize..7,
        window in 2usize..5,
        mean_gap in 0.05f64..2.0,
        seed in 0u64..40,
    ) {
        let workload = MixedWorkload {
            base: gen(5, 12, 12),
            n_requests,
            mean_interarrival: mean_gap,
            prompt_len: (4, 16),
            n_generate: (4, 16),
            seed,
        };
        let requests = workload.generate();
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4);
        let server = Server::new(prepared, ServerConfig { max_in_flight: window });
        let fused = server.serve_stepped(requests.clone());
        let unfused = server.serve_stepped_unfused(requests.clone());
        for req in &requests {
            let solo = solo_stepped(server.prepared(), &req.gen);
            let f = &fused.completion(req.id).unwrap().output.record.tokens;
            let u = &unfused.completion(req.id).unwrap().output.record.tokens;
            prop_assert_eq!(f, &solo, "request {} fused != solo", req.id);
            prop_assert_eq!(u, &solo, "request {} unfused != solo", req.id);
        }
    }

    /// Randomly fused forest batches: each lane gets a random decode-shaped
    /// sub-batch (pending token plus draft chain at a random base position
    /// with branch sequences).  Fusing must preserve every row's lane and
    /// sequence ids verbatim, the chain forest must collapse into a single
    /// fused group, and the per-entry visibility audit must hold.
    #[test]
    fn prop_level_groups_never_mix_rows_across_lanes(
        widths in proptest::collection::vec(1usize..6, 1..6),
        start_pos in 0i32..50,
    ) {
        use pipeinfer::model::Batch;
        let mut subs: Vec<Batch> = Vec::new();
        let mut forest = Batch::new();
        for (lane, &w) in widths.iter().enumerate() {
            let mut sub = Batch::new();
            let base = start_pos + lane as i32;
            sub.push(1 + lane as Token, base, vec![0], true);
            for d in 0..w {
                let seqs = if d % 2 == 0 { vec![0] } else { vec![0, 1 + d as u32] };
                sub.push(2 + d as Token, base + 1 + d as i32, seqs, true);
            }
            forest.append_lane(&sub, lane);
            subs.push(sub);
        }
        prop_assert_eq!(forest.lane_count(), widths.len());
        audit_forest(&forest);
        // Per-lane chains have strictly increasing positions, so the whole
        // forest must fuse into one cross-request group — the single GEMM.
        prop_assert_eq!(forest.level_groups().len(), 1);
        // Per-entry sequence-id audit: each lane's rows come back verbatim —
        // fusion never reassigns a row to another request's lane or seqs.
        for (lane, sub) in subs.iter().enumerate() {
            let rows: Vec<_> = forest
                .entries()
                .iter()
                .filter(|e| e.lane == lane)
                .map(|e| (e.token, e.pos, e.seq_ids.clone()))
                .collect();
            let expect: Vec<_> = sub
                .entries()
                .iter()
                .map(|e| (e.token, e.pos, e.seq_ids.clone()))
                .collect();
            prop_assert_eq!(rows, expect, "lane {} rows were remixed", lane);
        }
    }
}
