//! Chaos tests of the asynchronous speculation path (ISSUE 8): seeded fault
//! schedules against the discrete-event simulator must never change the
//! emitted token stream.
//!
//! The invariant under test is the one PipeInfer's recovery design rests
//! on: verified tokens come only from the head's seeded target oracle, the
//! local fallback drafter is constructed identically to the remote draft
//! rank's, and a head with no viable drafter degrades to non-speculative
//! pipelined decoding — so drops, delays, duplicates, reorders, stragglers
//! and even killing the dedicated draft rank mid-generation can slow a run
//! down but never alter (or truncate) its output.  Schedules are seeded,
//! so every case replays bit-identically — including its trace.

use pipeinfer::core::DRAFT_RANK;
use pipeinfer::prelude::*;
use pipeinfer::trace::EventKind;
use proptest::prelude::*;

fn sim(n: usize, seed: u64) -> ExecutionMode {
    ExecutionMode::Sim {
        pair: ModelPair::goliath_xwin7b(),
        cluster: ClusterSpec::cluster_c(n),
        oracle_seed: seed,
    }
}

fn gen(n_generate: usize) -> GenConfig {
    GenConfig {
        prompt: vec![9; 24],
        n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    }
}

/// A dedicated-draft-rank deployment with recovery knobs tight enough that
/// a dead draft rank fails over well inside a short simulated run.
fn dedicated(tree: bool) -> Deployment {
    let base = if tree {
        PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank)
    } else {
        PipeInferConfig::dedicated_draft_rank()
    };
    Deployment::new(PipeInferStrategy::new(PipeInferConfig {
        draft_deadline_s: 0.5,
        draft_backoff_s: 0.01,
        ..base
    }))
}

fn oracle_truth(oracle_seed: u64, prompt: &[u32], n: usize) -> Vec<u32> {
    let vocab = ModelPair::goliath_xwin7b().target.cfg.vocab_size as u32;
    pipeinfer::model::OracleTarget::new(oracle_seed, vocab).generate(prompt, n)
}

#[test]
fn killing_the_draft_rank_mid_stream_fails_over_and_preserves_the_stream() {
    let cfg = gen(32);
    let prepared = dedicated(false).prepare(&sim(6, 11), 6);
    let clean = prepared.run(&cfg);
    assert!(clean.completed);

    // Kill the dedicated draft rank a third of the way into the run.
    let t_kill = clean.stats.total_time * 0.3;
    assert!(t_kill > 0.0);
    let plan = FaultPlan::seeded(0xC4A05).kill_at(DRAFT_RANK, t_kill);
    let faulted = prepared.run_faulted_traced(&cfg, plan, TraceConfig::default());

    assert!(
        faulted.completed,
        "the survivors must finish without rank 1"
    );
    assert_eq!(
        faulted.record.tokens, clean.record.tokens,
        "the failover changed the token stream"
    );
    assert!(
        faulted.stats.total_failovers() >= 1,
        "the head never failed over to its local fallback drafter"
    );
    let trace = faulted.trace.expect("traced run must carry a trace");
    assert!(
        trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::DraftFailover { .. })),
        "the failover must be visible as a draft_failover trace event"
    );
    assert!(
        trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RankKilled)),
        "the kill must be visible as a rank_killed trace event"
    );
}

#[test]
fn fully_dropped_draft_links_degrade_without_deadlock_or_divergence() {
    // 100% loss in both directions between the head and the draft rank:
    // every draft transaction times out, the head fails over to its local
    // fallback, and the orphaned draft rank shuts itself down instead of
    // waiting forever for a Shutdown that can never arrive.
    let cfg = gen(24);
    for tree in [false, true] {
        let prepared = dedicated(tree).prepare(&sim(6, 23), 6);
        let clean = prepared.run(&cfg);
        let plan = FaultPlan::seeded(7).on_path(0, DRAFT_RANK, LinkFaults::drop_all());
        let faulted = prepared.run_faulted(&cfg, plan);
        assert!(faulted.completed, "tree={tree}: the run must halt cleanly");
        assert_eq!(
            faulted.record.tokens, clean.record.tokens,
            "tree={tree}: a black-holed draft path changed the stream"
        );
        assert!(faulted.stats.total_failovers() >= 1, "tree={tree}");
        assert!(faulted.stats.total_draft_timeouts() >= 1, "tree={tree}");
    }
}

#[test]
fn fault_schedules_replay_bit_identically() {
    // One schedule exercising the full fault vocabulary: lossy, slow,
    // duplicating, reordering draft links, a straggler pause on the last
    // pipeline rank and a draft-rank kill.  Replaying it must reproduce
    // the run bit-for-bit, trace included.
    let cfg = gen(24);
    let prepared = dedicated(false).prepare(&sim(6, 31), 6);
    let plan = || {
        FaultPlan::seeded(0xD1CE)
            .on_path(
                0,
                DRAFT_RANK,
                LinkFaults::delay(0.4, 0.005, 0.05)
                    .and_duplicate(0.2)
                    .and_reorder(0.2, 0.02),
            )
            .on_link(DRAFT_RANK, 0, LinkFaults::drop(0.3))
            .pause(5, 1.0, 2.0)
            .kill_at(DRAFT_RANK, 6.0)
    };
    let a = prepared.run_faulted_traced(&cfg, plan(), TraceConfig::default());
    let b = prepared.run_faulted_traced(&cfg, plan(), TraceConfig::default());
    assert_eq!(a.record.tokens, b.record.tokens);
    assert_eq!(a.record.finished_at, b.record.finished_at);
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
    assert_eq!(
        a.stats.total_faults_injected(),
        b.stats.total_faults_injected()
    );
    let log_a = a.trace.expect("trace").to_log();
    let log_b = b.trace.expect("trace").to_log();
    assert!(!log_a.is_empty());
    assert_eq!(log_a, log_b, "same schedule, different trace");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever seeded fault schedule degrades the draft path — message
    /// loss, delay, duplication, reordering, with or without killing the
    /// draft rank outright — the token stream stays byte-identical to the
    /// fault-free run (the target oracle's greedy continuation), across
    /// chain and tree micro-batch layouts and oracle seeds.
    #[test]
    fn prop_faulted_streams_are_byte_identical(
        drop_p in 0.0f64..0.8,
        delay_p in 0.0f64..0.8,
        dup_p in 0.0f64..0.5,
        reorder_p in 0.0f64..0.5,
        kill in proptest::bool::ANY,
        tree in proptest::bool::ANY,
        fault_seed in 0u64..1000,
        oracle_seed in 0u64..50,
    ) {
        let cfg = gen(20);
        let prepared = dedicated(tree).prepare(&sim(6, oracle_seed), 6);
        let clean = prepared.run(&cfg);
        prop_assert!(clean.completed);
        let truth = oracle_truth(oracle_seed, &cfg.prompt, 28);
        prop_assert_eq!(&clean.record.tokens[..20], &truth[1..21]);

        let faults = LinkFaults::delay(delay_p, 0.001, 0.08)
            .and_duplicate(dup_p)
            .and_reorder(reorder_p, 0.05);
        let mut plan = FaultPlan::seeded(fault_seed)
            .on_path(0, DRAFT_RANK, faults)
            .on_link(DRAFT_RANK, 0, LinkFaults::drop(drop_p));
        if kill {
            plan = plan.kill_at(DRAFT_RANK, clean.stats.total_time * 0.4);
        }
        let faulted = prepared.run_faulted(&cfg, plan);
        prop_assert!(faulted.completed, "chaos run did not halt cleanly");
        prop_assert_eq!(
            &faulted.record.tokens,
            &clean.record.tokens,
            "fault schedule changed the stream (kill={}, tree={})",
            kill,
            tree
        );
    }
}
