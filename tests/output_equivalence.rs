//! Workspace-level integration test: the paper's central correctness claim.
//!
//! "We verified that the output of PipeInfer was consistent with the output
//! from standard speculative inference, pipeline-parallel iterative
//! inference, and single-node inference … zero deviation" (§V-B).  Here the
//! same property is asserted with real tiny models executed across real
//! OS-thread pipelines, for well- and poorly-aligned draft models and for
//! both ablation variants.

use pipeinfer::model::{Batch, KvCache, Sampler};
use pipeinfer::prelude::*;
use std::sync::Arc;

fn tiny_pair(noise: f32, seed: u64) -> (Arc<Model>, ExecutionMode) {
    let cfg = ModelConfig::tiny_llama(96, 4);
    let target = Arc::new(Model::random(cfg.clone(), seed));
    let draft = Arc::new(Model::new(cfg, target.weights().perturbed(noise, seed + 1)));
    let mode = ExecutionMode::Real {
        target: target.clone(),
        draft,
    };
    (target, mode)
}

/// Greedy generation on a single process (no pipeline at all) — the ground
/// truth every distributed strategy must match.
fn single_process_greedy(model: &Model, prompt: &[u32], n: usize) -> Vec<u32> {
    let mut cache = KvCache::new(model.config().n_layers, model.config().kv_dim(), 2048);
    let logits = model
        .forward_full(&Batch::prompt(prompt, 0, 0), &mut cache)
        .unwrap();
    let mut tok = Sampler::Greedy.sample(logits.row(prompt.len() - 1).unwrap());
    let mut pos = prompt.len() as i32;
    let mut out = Vec::new();
    for i in 0..n + 1 {
        let logits = model
            .forward_full(&Batch::single(tok, pos, 0), &mut cache)
            .unwrap();
        tok = Sampler::Greedy.sample(logits.row(0).unwrap());
        pos += 1;
        // The first sampled token (from prompt processing) is not counted, so
        // collect from the first decode step onwards.
        if i < n {
            out.push(tok);
        }
    }
    out.truncate(n);
    out
}

#[test]
fn all_strategies_match_single_process_greedy_output() {
    let (target, mode) = tiny_pair(0.02, 7);
    let prompt: Vec<u32> = vec![5, 17, 33, 80, 2, 41];
    let n = 16;
    let truth = single_process_greedy(&target, &prompt, n);

    let gen = GenConfig::small_test(prompt, n);
    let iter = run_iterative(&mode, 3, &gen);
    let spec = run_speculative(&mode, 3, &gen);
    let pipe = run_pipeinfer(&mode, 3, &gen, &PipeInferConfig::default());

    assert!(iter.completed && spec.completed && pipe.completed);
    assert_eq!(iter.record.tokens[..n], truth[..]);
    assert_eq!(spec.record.tokens[..n], truth[..]);
    assert_eq!(pipe.record.tokens[..n], truth[..]);
}

#[test]
fn poorly_aligned_draft_does_not_change_output() {
    // A heavily perturbed draft model speculates mostly wrong tokens; the
    // output must still be bit-identical, only slower.
    let (target, mode) = tiny_pair(0.5, 21);
    let prompt = vec![9u32, 9, 9, 1, 2, 3];
    let n = 12;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    let spec = run_speculative(&mode, 2, &gen);
    let pipe = run_pipeinfer(&mode, 2, &gen, &PipeInferConfig::default());
    assert_eq!(spec.record.tokens[..n], truth[..]);
    assert_eq!(pipe.record.tokens[..n], truth[..]);
    // The poorly aligned draft must show a visibly lower acceptance rate.
    assert!(pipe.record.acceptance_rate() < 0.9);
}

#[test]
fn ablations_preserve_output_on_real_models() {
    let (target, mode) = tiny_pair(0.05, 33);
    let prompt = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
    let n = 12;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    for config in [
        PipeInferConfig::paper_default(),
        PipeInferConfig::no_cancellation(),
        PipeInferConfig::no_continuous_speculation(),
    ] {
        let out = run_pipeinfer(&mode, 4, &gen, &config);
        assert!(out.completed);
        assert_eq!(out.record.tokens[..n], truth[..], "config {config:?}");
    }
}

#[test]
fn pipeline_depth_does_not_change_output() {
    let (target, mode) = tiny_pair(0.02, 55);
    let prompt = vec![11u32, 22, 33, 44];
    let n = 10;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    for n_nodes in [2usize, 3, 4, 5] {
        let out = run_pipeinfer(&mode, n_nodes, &gen, &PipeInferConfig::default());
        assert_eq!(
            out.record.tokens[..n],
            truth[..],
            "output changed at {n_nodes} nodes"
        );
    }
}
