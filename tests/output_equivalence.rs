//! Workspace-level integration test: the paper's central correctness claim.
//!
//! "We verified that the output of PipeInfer was consistent with the output
//! from standard speculative inference, pipeline-parallel iterative
//! inference, and single-node inference … zero deviation" (§V-B).  Here the
//! same property is asserted with real tiny models executed across real
//! OS-thread pipelines, for well- and poorly-aligned draft models and for
//! both ablation variants — every strategy assembled and executed through
//! the shared [`Deployment`] layer.

use pipeinfer::model::{Batch, KvCache, Sampler};
use pipeinfer::prelude::*;
use std::sync::Arc;

fn tiny_pair(noise: f32, seed: u64) -> (Arc<Model>, ExecutionMode) {
    let cfg = ModelConfig::tiny_llama(96, 4);
    let target = Arc::new(Model::random(cfg.clone(), seed));
    let draft = Arc::new(Model::new(cfg, target.weights().perturbed(noise, seed + 1)));
    let mode = ExecutionMode::Real {
        target: target.clone(),
        draft,
    };
    (target, mode)
}

/// One deployment per strategy, PipeInfer with its default configuration.
fn all_deployments() -> Vec<(&'static str, Deployment)> {
    vec![
        ("iterative", Deployment::new(IterativeStrategy)),
        ("speculative", Deployment::new(SpeculativeStrategy)),
        ("pipeinfer", Deployment::new(PipeInferStrategy::default())),
        ("tree", Deployment::new(TreeSpeculationStrategy::default())),
    ]
}

/// Greedy generation on a single process (no pipeline at all) — the ground
/// truth every distributed strategy must match.
fn single_process_greedy(model: &Model, prompt: &[u32], n: usize) -> Vec<u32> {
    let mut cache = KvCache::new(model.config().n_layers, model.config().kv_dim(), 2048);
    let logits = model
        .forward_full(&Batch::prompt(prompt, 0, 0), &mut cache)
        .unwrap();
    let mut tok = Sampler::Greedy.sample(logits.row(prompt.len() - 1).unwrap());
    let first_pos = prompt.len() as i32;
    let mut out = Vec::new();
    for (i, pos) in (first_pos..first_pos + n as i32 + 1).enumerate() {
        let logits = model
            .forward_full(&Batch::single(tok, pos, 0), &mut cache)
            .unwrap();
        tok = Sampler::Greedy.sample(logits.row(0).unwrap());
        // The first sampled token (from prompt processing) is not counted, so
        // collect from the first decode step onwards.
        if i < n {
            out.push(tok);
        }
    }
    out.truncate(n);
    out
}

#[test]
fn all_strategies_match_single_process_greedy_output() {
    let (target, mode) = tiny_pair(0.02, 7);
    let prompt: Vec<u32> = vec![5, 17, 33, 80, 2, 41];
    let n = 16;
    let truth = single_process_greedy(&target, &prompt, n);

    let gen = GenConfig::small_test(prompt, n);
    for (name, deployment) in all_deployments() {
        let out = deployment.run(&mode, 3, &gen);
        assert!(out.completed, "{name} did not complete");
        assert_eq!(
            out.record.tokens[..n],
            truth[..],
            "{name} diverged from single-process greedy output"
        );
    }
}

#[test]
fn poorly_aligned_draft_does_not_change_output() {
    // A heavily perturbed draft model speculates mostly wrong tokens; the
    // output must still be bit-identical, only slower.
    let (target, mode) = tiny_pair(0.5, 21);
    let prompt = vec![9u32, 9, 9, 1, 2, 3];
    let n = 12;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    let spec = Deployment::new(SpeculativeStrategy).run(&mode, 2, &gen);
    let pipe = Deployment::new(PipeInferStrategy::default()).run(&mode, 2, &gen);
    let tree = Deployment::new(TreeSpeculationStrategy::default()).run(&mode, 2, &gen);
    assert_eq!(spec.record.tokens[..n], truth[..]);
    assert_eq!(pipe.record.tokens[..n], truth[..]);
    assert_eq!(tree.record.tokens[..n], truth[..]);
    // The poorly aligned draft must show a visibly lower acceptance rate.
    assert!(pipe.record.acceptance_rate() < 0.9);
}

#[test]
fn ablations_preserve_output_on_real_models() {
    let (target, mode) = tiny_pair(0.05, 33);
    let prompt = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
    let n = 12;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    for config in [
        PipeInferConfig::paper_default(),
        PipeInferConfig::no_cancellation(),
        PipeInferConfig::no_continuous_speculation(),
    ] {
        let out = Deployment::new(PipeInferStrategy::new(config.clone())).run(&mode, 4, &gen);
        assert!(out.completed);
        assert_eq!(out.record.tokens[..n], truth[..], "config {config:?}");
    }
}

#[test]
fn pipeline_depth_does_not_change_output() {
    let (target, mode) = tiny_pair(0.02, 55);
    let prompt = vec![11u32, 22, 33, 44];
    let n = 10;
    let truth = single_process_greedy(&target, &prompt, n);
    let gen = GenConfig::small_test(prompt, n);
    let deployment = Deployment::new(PipeInferStrategy::default());
    for n_nodes in [2usize, 3, 4, 5] {
        let out = deployment.run(&mode, n_nodes, &gen);
        assert_eq!(
            out.record.tokens[..n],
            truth[..],
            "output changed at {n_nodes} nodes"
        );
    }
}

#[test]
fn legacy_runner_wrappers_match_deployment_output() {
    // `run_iterative` / `run_speculative` / `run_pipeinfer` are kept as thin
    // wrappers; they must behave exactly like explicit deployments.
    let (_, mode) = tiny_pair(0.02, 77);
    let gen = GenConfig::small_test(vec![6, 5, 4, 3], 8);
    let a = run_iterative(&mode, 3, &gen);
    let b = Deployment::new(IterativeStrategy).run(&mode, 3, &gen);
    assert_eq!(a.record.tokens, b.record.tokens);
    let a = run_speculative(&mode, 3, &gen);
    let b = Deployment::new(SpeculativeStrategy).run(&mode, 3, &gen);
    assert_eq!(a.record.tokens, b.record.tokens);
    let a = run_pipeinfer(&mode, 3, &gen, &PipeInferConfig::default());
    let b = Deployment::new(PipeInferStrategy::default()).run(&mode, 3, &gen);
    assert_eq!(a.record.tokens, b.record.tokens);
}
