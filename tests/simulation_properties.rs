//! Workspace-level integration tests of the simulated evaluation path:
//! determinism, cross-strategy orderings and property-based checks on the
//! paper's qualitative claims.  All strategies execute through the shared
//! [`Deployment`] layer; property cases are drawn deterministically (fixed
//! seeds), so a failure always reproduces identically.

use pipeinfer::prelude::*;
use proptest::prelude::*;

fn sim(pair: ModelPair, n: usize, seed: u64) -> ExecutionMode {
    ExecutionMode::Sim {
        pair,
        cluster: ClusterSpec::cluster_c(n),
        oracle_seed: seed,
    }
}

fn gen(n_generate: usize) -> GenConfig {
    GenConfig {
        prompt: vec![4; 24],
        n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    }
}

fn pipeinfer() -> Deployment {
    Deployment::new(PipeInferStrategy::default())
}

#[test]
fn simulated_runs_are_bit_reproducible() {
    let cfg = gen(40);
    for _ in 0..2 {
        let a = pipeinfer().run(&sim(ModelPair::falcon_7b(), 8, 3), 8, &cfg);
        let b = pipeinfer().run(&sim(ModelPair::falcon_7b(), 8, 3), 8, &cfg);
        assert_eq!(a.record.tokens, b.record.tokens);
        assert_eq!(a.record.finished_at, b.record.finished_at);
        assert_eq!(a.record.accept_times, b.record.accept_times);
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
    }
}

#[test]
fn paper_orderings_hold_on_cluster_c() {
    // PipeInfer ≥ speculative ≥ iterative in generation speed at 8 nodes;
    // TTFT: PipeInfer ≈ iterative < speculative (paper Figs. 4 and 5).
    let cfg = gen(64);
    for pair in [ModelPair::dolphin_tinyllama(), ModelPair::goliath_xwin7b()] {
        let iter = Deployment::new(IterativeStrategy).run(&sim(pair.clone(), 8, 5), 8, &cfg);
        let spec = Deployment::new(SpeculativeStrategy).run(&sim(pair.clone(), 8, 5), 8, &cfg);
        let pipe = pipeinfer().run(&sim(pair.clone(), 8, 5), 8, &cfg);
        assert!(
            pipe.record.generation_speed() > spec.record.generation_speed(),
            "{}: pipe {:.2} <= spec {:.2}",
            pair.name,
            pipe.record.generation_speed(),
            spec.record.generation_speed()
        );
        assert!(spec.record.generation_speed() > iter.record.generation_speed());
        // TTFT: PipeInfer stays at iterative levels.  Speculative inference
        // pays the draft latency up front, which is only pronounced when the
        // draft model is not tiny (the Goliath pair uses a 7B draft).
        assert!(pipe.record.ttft() <= 1.05 * spec.record.ttft());
        assert!(pipe.record.ttft() < 1.5 * iter.record.ttft());
        if pair.name.contains("Goliath") {
            assert!(spec.record.ttft() > pipe.record.ttft());
        }
    }
}

#[test]
fn cancellation_ablation_never_improves_speed_under_poor_alignment() {
    let cfg = gen(64);
    let pair = ModelPair::goliath_xwin7b();
    let full = pipeinfer().run(&sim(pair.clone(), 8, 9), 8, &cfg);
    let no_cancel = Deployment::new(PipeInferStrategy::new(PipeInferConfig::no_cancellation()))
        .run(&sim(pair, 8, 9), 8, &cfg);
    assert!(full.record.generation_speed() >= 0.95 * no_cancel.record.generation_speed());
    assert_eq!(full.record.tokens, no_cancel.record.tokens);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the acceptance rate and node count, PipeInfer must (a) finish,
    /// (b) reproduce the oracle's greedy continuation exactly, and (c) never
    /// be slower than the iterative baseline by more than a small tolerance.
    #[test]
    fn prop_pipeinfer_correct_and_competitive(
        acceptance in 0.05f64..0.95,
        n_nodes in 4usize..12,
        seed in 0u64..50,
    ) {
        let mut pair = ModelPair::dolphin_tinyllama();
        pair.acceptance_rate = acceptance;
        let cfg = gen(32);
        let mode = sim(pair.clone(), n_nodes, seed);
        let pipe = pipeinfer().run(&mode, n_nodes, &cfg);
        prop_assert!(pipe.completed);
        prop_assert!(pipe.record.tokens.len() >= 32);
        let truth = pipeinfer::model::OracleTarget::new(seed, pair.target.cfg.vocab_size as u32)
            .generate(&cfg.prompt, 40);
        prop_assert_eq!(&pipe.record.tokens[..32], &truth[1..33]);

        let iter = Deployment::new(IterativeStrategy).run(&mode, n_nodes, &cfg);
        prop_assert!(
            pipe.record.generation_speed() > 0.8 * iter.record.generation_speed(),
            "pipe {} vs iter {}",
            pipe.record.generation_speed(),
            iter.record.generation_speed()
        );
    }

    /// The degenerate configuration (head-hosted drafting, width-1 chain
    /// micro-batches, whole-run invalidation) and every point of the layout
    /// matrix — dedicated draft rank, tree micro-batches with and without
    /// branch-granular invalidation — emit byte-identical token streams:
    /// the target oracle's greedy continuation, regardless of acceptance
    /// rate, node count or seed.
    #[test]
    fn prop_layout_matrix_streams_are_byte_identical(
        acceptance in 0.05f64..0.95,
        n_nodes in 4usize..10,
        seed in 0u64..50,
    ) {
        let mut pair = ModelPair::goliath_xwin7b();
        pair.acceptance_rate = acceptance;
        let cfg = gen(24);
        let mode = sim(pair.clone(), n_nodes, seed);
        let truth = pipeinfer::model::OracleTarget::new(seed, pair.target.cfg.vocab_size as u32)
            .generate(&cfg.prompt, 32);
        let degenerate = PipeInferConfig::default().whole_run_invalidation();
        let variants = [
            degenerate,
            PipeInferConfig::default(),
            PipeInferConfig::dedicated_draft_rank(),
            PipeInferConfig::tree_micro(),
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
            PipeInferConfig::tree_micro().whole_run_invalidation(),
        ];
        for config in variants {
            let out = Deployment::new(PipeInferStrategy::new(config.clone()))
                .run(&mode, n_nodes, &cfg);
            prop_assert!(out.completed, "{config:?}");
            prop_assert_eq!(
                &out.record.tokens[..24],
                &truth[1..25],
                "stream diverged under {:?}",
                config
            );
        }
    }
}
