//! Properties of the `pi_trace` recorder and bubble analyzer on real
//! deployments (ISSUE 7):
//!
//! 1. The sim-driver event stream is byte-identical across
//!    `PIPEINFER_THREADS` settings and oracle seeds — recording rides on
//!    virtual time, so host parallelism must never leak into a trace log.
//! 2. The bubble analyzer's busy/blocked/idle intervals exactly tile each
//!    rank's timeline: contiguous from 0 to the rank's last event, with the
//!    per-state sums matching the tiled interval lengths.
//! 3. The paper's Fig. 3 claim in bubble terms: on the lowest-alignment
//!    pair (Goliath-120B + Xwin-7B, ~52% acceptance) the dedicated draft
//!    rank leaves the target-pipeline ranks with a lower bubble fraction
//!    than head-hosted drafting.

use pipeinfer::prelude::*;
use pipeinfer::trace::State;
use std::sync::Mutex;

/// Serialises tests that mutate `PIPEINFER_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());
const THREADS_ENV: &str = "PIPEINFER_THREADS";

fn sim_mode(oracle_seed: u64) -> ExecutionMode {
    ExecutionMode::Sim {
        pair: ModelPair::goliath_xwin7b(),
        cluster: ClusterSpec::cluster_c(4),
        oracle_seed,
    }
}

fn gen_config() -> GenConfig {
    GenConfig {
        prompt: vec![7; 64],
        n_generate: 64,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    }
}

fn traced_run(config: PipeInferConfig, oracle_seed: u64) -> RunOutput {
    Deployment::new(PipeInferStrategy::new(config))
        .prepare(&sim_mode(oracle_seed), 4)
        .run_traced(&gen_config(), TraceConfig::default())
}

#[test]
fn sim_trace_log_is_byte_identical_across_thread_counts_and_seeds() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var_os(THREADS_ENV);
    for seed in [42u64, 1234] {
        std::env::remove_var(THREADS_ENV);
        let baseline = traced_run(PipeInferConfig::paper_default(), seed)
            .trace
            .expect("traced run must carry a trace")
            .to_log();
        assert!(!baseline.is_empty());
        for threads in [1usize, 2, 4, 8] {
            std::env::set_var(THREADS_ENV, threads.to_string());
            let log = traced_run(PipeInferConfig::paper_default(), seed)
                .trace
                .expect("traced run must carry a trace")
                .to_log();
            assert_eq!(
                log, baseline,
                "seed {seed}: trace log diverged at PIPEINFER_THREADS={threads}"
            );
        }
    }
    match prev {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
}

#[test]
fn bubble_intervals_exactly_tile_each_rank_timeline() {
    for config in [
        PipeInferConfig::paper_default(),
        PipeInferConfig::dedicated_draft_rank(),
        PipeInferConfig::tree_micro(),
    ] {
        let out = traced_run(config, 42);
        assert!(out.completed);
        let trace = out.trace.expect("traced run must carry a trace");
        let report = BubbleReport::analyze(&trace);
        assert_eq!(report.ranks.len(), 4);
        for t in &report.ranks {
            assert!(t.end > 0.0, "rank {} recorded no events", t.rank);
            assert!(!t.intervals.is_empty());
            assert_eq!(
                t.intervals[0].t0, 0.0,
                "rank {} timeline must start at 0",
                t.rank
            );
            for pair in t.intervals.windows(2) {
                assert_eq!(
                    pair[0].t1, pair[1].t0,
                    "rank {}: gap or overlap between consecutive intervals",
                    t.rank
                );
            }
            assert_eq!(
                t.intervals.last().unwrap().t1,
                t.end,
                "rank {} timeline must end at its last event",
                t.rank
            );
            // Per-state sums are exactly the tiled interval lengths, and
            // together they cover the whole timeline.
            let (mut busy, mut blocked, mut idle) = (0.0f64, 0.0, 0.0);
            for iv in &t.intervals {
                assert!(iv.t1 >= iv.t0, "rank {}: negative-length interval", t.rank);
                match iv.state {
                    State::Busy => busy += iv.len(),
                    State::Blocked(_) => blocked += iv.len(),
                    State::Idle(_) => idle += iv.len(),
                }
            }
            let tol = 1e-9 * t.end.max(1.0);
            assert!((busy - t.busy).abs() <= tol);
            assert!((blocked - t.blocked).abs() <= tol);
            assert!((idle - t.idle).abs() <= tol);
            assert!(
                (busy + blocked + idle - t.end).abs() <= tol,
                "rank {}: busy {busy} + blocked {blocked} + idle {idle} != end {}",
                t.rank,
                t.end
            );
        }
    }
}

#[test]
fn dedicated_draft_rank_lowers_pipeline_bubble_fraction_on_goliath_xwin7b() {
    // Head-hosted: rank 0 drafts + orchestrates, ranks 1..4 hold the target
    // pipeline.  Dedicated: rank 1 drafts off-route, ranks 2..4 hold it.
    let head = traced_run(PipeInferConfig::paper_default(), 42);
    let dedicated = traced_run(PipeInferConfig::dedicated_draft_rank(), 42);
    assert!(head.completed && dedicated.completed);

    let head_report = BubbleReport::analyze(head.trace.as_ref().unwrap());
    let ded_report = BubbleReport::analyze(dedicated.trace.as_ref().unwrap());
    let head_frac = head_report.mean_bubble_fraction_of(&[1, 2, 3]);
    let ded_frac = ded_report.mean_bubble_fraction_of(&[2, 3]);
    assert!(head_frac > 0.0 && head_frac < 1.0);
    assert!(ded_frac > 0.0 && ded_frac < 1.0);
    assert!(
        ded_frac < head_frac,
        "dedicated draft rank should idle the target pipeline less: \
         dedicated {ded_frac:.3} vs head-hosted {head_frac:.3}"
    );
}
