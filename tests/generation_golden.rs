//! Golden end-to-end generation: kernel changes must not move the output.
//!
//! Greedy decoding from a fixed-seed tiny model is pinned to a hardcoded
//! token sequence.  The `simd` feature swaps every hot kernel (dense and
//! quantized matmul, rmsnorm, softmax, SwiGLU) for the f32x8 versions whose
//! accumulation order differs from the scalar build's — the logits agree
//! only to ~1e-4 — but greedy argmax margins in a real forward pass dwarf
//! that, so the *sampled tokens* must be byte-identical with the feature on
//! and off.  A silent kernel bug large enough to flip any argmax fails this
//! test on whichever build carries it.

use pipeinfer::model::{Batch, KvCache, Model, ModelConfig, OracleTarget, Sampler};
use pipeinfer::prelude::{
    ClusterSpec, Deployment, ExecutionMode, GenConfig, ModelPair, PipeInferConfig,
    PipeInferStrategy, TraceConfig,
};
use pipeinfer::trace::EventKind;
use pipeinfer_core::DraftPlacement;
use std::sync::Arc;

/// The pinned greedy output of `Model::random(tiny_llama(96, 4), 2024)` on
/// prompt `[3, 14, 15, 9, 2, 6]`, recorded from the scalar build.
fn golden_tokens() -> Vec<u32> {
    vec![
        8, 8, 11, 11, 11, 11, 8, 8, 8, 8, 8, 8, 8, 11, 11, 78, 8, 8, 8, 8, 28, 28, 28, 28,
    ]
}

/// The pinned output of every *distributed* strategy (iterative baseline and
/// all PipeInfer layouts agree) on the same model and prompt.  The
/// distributed schedule batches the prompt differently from the
/// single-process loop above, so its near-tie at step 1 resolves the other
/// way; within the distributed world the sequence is strategy-invariant.
fn golden_distributed_tokens() -> Vec<u32> {
    vec![
        8, 11, 11, 11, 11, 8, 8, 8, 8, 8, 8, 8, 11, 11, 78, 8, 8, 8, 8, 28, 28, 28, 28, 28,
    ]
}

/// Greedy single-process generation, the same schedule as the
/// output-equivalence suite's ground truth.
fn greedy(model: &Model, prompt: &[u32], n: usize) -> Vec<u32> {
    let mut cache = KvCache::new(model.config().n_layers, model.config().kv_dim(), 2048);
    let logits = model
        .forward_full(&Batch::prompt(prompt, 0, 0), &mut cache)
        .unwrap();
    let mut tok = Sampler::Greedy.sample(logits.row(prompt.len() - 1).unwrap());
    let mut out = vec![tok];
    for i in 0..n - 1 {
        let pos = prompt.len() as i32 + i as i32;
        let logits = model
            .forward_full(&Batch::single(tok, pos, 0), &mut cache)
            .unwrap();
        tok = Sampler::Greedy.sample(logits.row(0).unwrap());
        out.push(tok);
    }
    out
}

#[test]
fn greedy_generation_matches_golden_tokens() {
    let model = Model::random(ModelConfig::tiny_llama(96, 4), 2024);
    let prompt: Vec<u32> = vec![3, 14, 15, 9, 2, 6];
    let tokens = greedy(&model, &prompt, 24);
    // Recorded from the scalar build; the simd build must reproduce it
    // exactly (see module docs).
    assert_eq!(
        tokens,
        golden_tokens(),
        "greedy generation diverged from the recorded golden sequence"
    );
}

/// The distributed strategies — tree speculation and the dedicated draft
/// rank, in both combinations — must reproduce the same golden tokens with
/// the event recorder attached.  Speculation is lossless and tracing only
/// observes, so any divergence means one of them leaked into generation.
#[test]
fn traced_distributed_strategies_reproduce_golden_tokens() {
    let target = Arc::new(Model::random(ModelConfig::tiny_llama(96, 4), 2024));
    let draft = Arc::new(Model::new(
        target.config().clone(),
        target.weights().perturbed(0.02, 2025),
    ));
    let mode = ExecutionMode::Real { target, draft };
    let gen = GenConfig {
        prompt: vec![3, 14, 15, 9, 2, 6],
        n_generate: 24,
        max_draft: 4,
        confidence_cutoff: 0.3,
        kv_capacity: 2048,
    };

    let strategies = [
        ("tree", PipeInferConfig::tree_micro()),
        ("dedicated rank", PipeInferConfig::dedicated_draft_rank()),
        (
            "dedicated tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
        ),
    ];
    for (name, config) in strategies {
        let dedicated = config.draft_placement == DraftPlacement::DedicatedRank;
        let out = Deployment::new(PipeInferStrategy::new(config))
            .prepare(&mode, 4)
            .run_traced(&gen, TraceConfig::default());
        assert!(out.completed, "{name} run did not complete");
        assert_eq!(
            out.record.tokens[..24],
            golden_distributed_tokens()[..],
            "{name} with tracing enabled diverged from the golden sequence"
        );
        let trace = out.trace.expect("run_traced must attach a trace");
        assert!(!trace.events().is_empty(), "{name} trace is empty");
        if dedicated {
            assert!(
                trace
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::DraftServe { .. })),
                "{name}: dedicated draft rank served nothing"
            );
        }
    }
}

/// The same pin on the simulated paper-scale pair, where speculation
/// actually fires (tiny random models rarely clear the confidence cutoff,
/// so the real-model test above exercises layouts more than tree shapes):
/// with tracing enabled, tree and dedicated-rank PipeInfer must still
/// reproduce the alignment oracle's canonical stream token for token, and
/// the trace must show genuinely tree-shaped (width > 1) runs.
#[test]
fn traced_sim_tree_strategies_match_oracle_stream() {
    let pair = ModelPair::goliath_xwin7b();
    let vocab = pair.target.cfg.vocab_size as u32;
    let mode = ExecutionMode::Sim {
        pair,
        cluster: ClusterSpec::cluster_c(4),
        oracle_seed: 42,
    };
    let gen = GenConfig {
        prompt: vec![5; 16],
        n_generate: 32,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 4096,
    };
    let truth = OracleTarget::new(42, vocab).generate(&[5; 16], 40);

    let strategies = [
        ("tree", PipeInferConfig::tree_micro()),
        (
            "dedicated tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
        ),
    ];
    for (name, config) in strategies {
        let dedicated = config.draft_placement == DraftPlacement::DedicatedRank;
        let out = Deployment::new(PipeInferStrategy::new(config))
            .prepare(&mode, 4)
            .run_traced(&gen, TraceConfig::default());
        assert!(out.completed, "{name} run did not complete");
        assert_eq!(
            out.record.tokens[..32].to_vec(),
            truth[1..33].to_vec(),
            "{name} with tracing enabled diverged from the oracle stream"
        );
        let trace = out.trace.expect("run_traced must attach a trace");
        assert!(
            trace.events().iter().any(|e| matches!(
                e.kind,
                EventKind::RunSpawned { width, .. } if width > 1
            )),
            "{name}: no tree-shaped run in the trace"
        );
        if dedicated {
            assert!(
                trace
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::DraftServe { .. })),
                "{name}: dedicated draft rank served nothing"
            );
        }
    }
}
