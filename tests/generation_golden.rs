//! Golden end-to-end generation: kernel changes must not move the output.
//!
//! Greedy decoding from a fixed-seed tiny model is pinned to a hardcoded
//! token sequence.  The `simd` feature swaps every hot kernel (dense and
//! quantized matmul, rmsnorm, softmax, SwiGLU) for the f32x8 versions whose
//! accumulation order differs from the scalar build's — the logits agree
//! only to ~1e-4 — but greedy argmax margins in a real forward pass dwarf
//! that, so the *sampled tokens* must be byte-identical with the feature on
//! and off.  A silent kernel bug large enough to flip any argmax fails this
//! test on whichever build carries it.

use pipeinfer::model::{Batch, KvCache, Model, ModelConfig, Sampler};

/// Greedy single-process generation, the same schedule as the
/// output-equivalence suite's ground truth.
fn greedy(model: &Model, prompt: &[u32], n: usize) -> Vec<u32> {
    let mut cache = KvCache::new(model.config().n_layers, model.config().kv_dim(), 2048);
    let logits = model
        .forward_full(&Batch::prompt(prompt, 0, 0), &mut cache)
        .unwrap();
    let mut tok = Sampler::Greedy.sample(logits.row(prompt.len() - 1).unwrap());
    let mut out = vec![tok];
    for i in 0..n - 1 {
        let pos = prompt.len() as i32 + i as i32;
        let logits = model
            .forward_full(&Batch::single(tok, pos, 0), &mut cache)
            .unwrap();
        tok = Sampler::Greedy.sample(logits.row(0).unwrap());
        out.push(tok);
    }
    out
}

#[test]
fn greedy_generation_matches_golden_tokens() {
    let model = Model::random(ModelConfig::tiny_llama(96, 4), 2024);
    let prompt: Vec<u32> = vec![3, 14, 15, 9, 2, 6];
    let tokens = greedy(&model, &prompt, 24);
    // Recorded from the scalar build; the simd build must reproduce it
    // exactly (see module docs).
    let golden: Vec<u32> = vec![
        8, 8, 11, 11, 11, 11, 8, 8, 8, 8, 8, 8, 8, 11, 11, 78, 8, 8, 8, 8, 28, 28, 28, 28,
    ];
    assert_eq!(
        tokens, golden,
        "greedy generation diverged from the recorded golden sequence"
    );
}
