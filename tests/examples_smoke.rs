//! Smoke test: every example binary must compile and run to completion.
//!
//! The examples exercise the facade crate's re-exports (`pipeinfer::prelude`,
//! `pipeinfer::metrics`, direct `pi_model` paths), so running them guards the
//! public API surface against drift.  `PIPEINFER_SMOKE=1` makes each example
//! generate only a handful of tokens so the whole suite stays fast.

use std::process::Command;

const EXAMPLES: [&str; 10] = [
    "quickstart",
    "chat_generation",
    "cluster_sweep",
    "heterogeneous_cluster",
    "serving",
    "tree_generation",
    "draft_rank",
    "trace_viz",
    "chaos",
    "cohort_serving",
];

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--quiet", "--offline", "--example", name])
        .env("PIPEINFER_SMOKE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to launch example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} printed nothing to stdout"
    );
}

#[test]
fn quickstart_example_runs() {
    run_example(EXAMPLES[0]);
}

#[test]
fn chat_generation_example_runs() {
    run_example(EXAMPLES[1]);
}

#[test]
fn cluster_sweep_example_runs() {
    run_example(EXAMPLES[2]);
}

#[test]
fn heterogeneous_cluster_example_runs() {
    run_example(EXAMPLES[3]);
}

#[test]
fn serving_example_runs() {
    run_example(EXAMPLES[4]);
}

#[test]
fn tree_generation_example_runs() {
    run_example(EXAMPLES[5]);
}

#[test]
fn draft_rank_example_runs() {
    run_example(EXAMPLES[6]);
}

#[test]
fn trace_viz_example_runs() {
    run_example(EXAMPLES[7]);
}

#[test]
fn chaos_example_runs() {
    run_example(EXAMPLES[8]);
}

#[test]
fn cohort_serving_example_runs() {
    run_example(EXAMPLES[9]);
}
